"""Sharded ingest: per-scope dispatch over a pluggable executor.

Per-scope dispatch is embarrassingly parallel: a monitor's scopes (one
per user for the baseline families, one per cluster for the shared
families) never read each other's frontier state, so an arrival batch
can be fanned out across scope subsets and the per-row target sets
merged back in arrival order.  This module turns that observation into
an execution layer:

* :func:`sieve_signature` / :func:`shard_of` — a deterministic,
  process-stable hash of a scope's *sieve orders* (the user's own
  preference, or a cluster's virtual).  Scopes with equal sieve orders
  always land in the same shard, so the one-pass-per-distinct-order
  sieve of :class:`~repro.core.ingest.IngestPipeline` is never split:
  the sharded run performs exactly the serial run's sieve passes.
* :class:`ExecutionPlan` — the current scope → shard assignment plus
  per-shard load estimates, re-derived whenever churn mutates the
  scope set.
* Executors — ``serial`` (the reference: shards run one after another
  in-process), ``threads`` (one thread per shard; state is disjoint by
  construction, so no locks are needed) and ``processes`` (one worker
  process per shard, built from a picklable :class:`ShardSpec` and
  driven over pipes — true parallelism across cores).
* :class:`ShardedMonitor` — the monitor-shaped façade: each shard hosts
  a *real* monitor of the selected family over its scope subset, and
  the façade merges notifications, stats, frontiers, buffers and churn.

The wire plane (DESIGN.md §14)
------------------------------

The façade owns the **master** :class:`~repro.core.compiled.DomainCodec`
and performs one shared coerce+encode pass per batch; shards hold
*replicas* of it — the very same instance under the in-process
executors, a journal-replayed copy inside each worker process — kept in
lockstep by versioned interning deltas, so replicas never intern a
value independently.  A ``processes`` batch travels as one compact
binary frame per shard (:mod:`repro.core.wire`): shape header, codec
delta, oid range and the code matrix in the smallest dtype that fits —
no per-object pickles on the batch path.  Codec-less monitors (the
interpreted kernel) fall back to a pickled command blob, charged to the
same ``wire_bytes`` counter so the compact format's win is directly
measurable.

Serial-equivalence contract (DESIGN.md §12)
-------------------------------------------

For every monitor family, every executor and every shard count:
notifications (per-row target sets, in arrival order), per-user
frontiers, sliding-window buffers and per-shard comparison counts are
byte-identical to the serial path.  Each shard *is* a serial monitor
over its scopes, so its counts equal an unsharded monitor built over
the same scope subset; and because equal sieve orders are co-located,
the shard totals sum to the full serial run's totals.  Cluster-join
decisions under churn run in the façade over the global, serial-ordered
cluster list (similarity normalisation depends on the all-cluster
attribute union), then execute as a retire + install pair
(:meth:`~repro.core.filter_verify.FilterThenVerify.retire_cluster` /
``install_cluster``): the merged cluster lands in the shard its *new*
virtual hashes to, so a join that drifts the virtual re-homes the
scope — at exactly the serial rebuild cost — and co-location survives
arbitrary churn.

Plan rebalancing rides the same machinery: the façade tracks a load
EWMA per *signature group* (all scopes sharing one sieve signature) and,
when churn skews the per-shard loads past :data:`REBALANCE_SKEW`, moves
whole groups from the busiest shard to the lightest via verbatim
frontier/buffer state transfer (``export_user``/``adopt_user``,
``export_cluster``/``adopt_cluster``) — zero comparisons charged, equal
signatures still co-located, every subsequent count still
serial-identical.  Rebalancing triggers only on churn events (or an
explicit :meth:`ShardedMonitor.rebalance` /
:meth:`~ShardedMonitor.split_shard` / :meth:`~ShardedMonitor.merge_shards`
call), never mid-batch, so move-free feeds keep the hash placement the
per-shard gate pins.
"""

from __future__ import annotations

import pickle
import weakref
import zlib
from collections.abc import Mapping, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.clusters import Cluster, UserId, best_matching_cluster
from repro.core.compiled import DomainCodec, codec_source, validate_kernel
from repro.core.errors import ReproError
from repro.core.filter_verify import join_virtual
from repro.core.ingest import IngestPipeline
from repro.core.preference import Preference
from repro.data.objects import Object, Schema
from repro.metrics.counters import WireCounters

#: The pluggable executors, in documentation order.  ``serial`` is the
#: reference implementation the other two must match byte for byte.
EXECUTORS = ("serial", "threads", "processes")

#: Rebalance when the busiest shard's load exceeds this multiple of the
#: mean shard load (and it hosts more than one signature group).
REBALANCE_SKEW = 2.0

#: EWMA smoothing for per-group load samples (members × batch rows).
LOAD_ALPHA = 0.25

#: First byte of a data-plane wire frame — ``repro.core.wire.MAGIC``,
#: known here without importing the numpy-backed wire module so
#: codec-less deployments never pay that import.  Disjoint from
#: pickle's ``\x80`` opcode, so a worker dispatches on one byte.
_FRAME_MAGIC = b"W"


def validate_executor(name: str) -> str:
    """Return *name* if it names a known executor, else raise loudly."""
    if name not in EXECUTORS:
        raise ReproError(
            f"unknown executor {name!r}; choose one of {EXECUTORS}"
        )
    return name


# ---------------------------------------------------------------------------
# Deterministic scope placement
# ---------------------------------------------------------------------------


def sieve_signature(preference: Preference, schema: Schema) -> str:
    """A canonical, process-stable text form of a scope's sieve orders.

    Two scopes share one intra-batch sieve pass (and, under the
    compiled kernel, one registry entry) exactly when their
    schema-aligned orders are equal, i.e. when every attribute's
    preference-pair set matches.  The signature serialises those pair
    sets in sorted ``repr`` order, so equal orders always produce equal
    strings — across runs and across processes (no dependence on
    ``PYTHONHASHSEED``).
    """
    parts = []
    for order in preference.aligned(tuple(schema)):
        parts.append(",".join(sorted(repr(pair) for pair in order.pairs)))
    return ";".join(parts)


def shard_of(signature: str, workers: int) -> int:
    """Deterministic shard index for a sieve signature (crc32 mod n)."""
    return zlib.crc32(signature.encode("utf-8")) % max(1, workers)


@dataclass(frozen=True)
class ExecutionPlan:
    """The current scope → shard assignment of a sharded monitor.

    ``assignment`` maps a scope key — the user id for per-user
    families, the frozenset of member user ids for cluster scopes — to
    the owning shard index.  The plan is a pure function of the live
    scope set plus the façade's signature-group bookkeeping: it is
    re-derived whenever churn mutates the scopes, so after any
    subscribe/unsubscribe/rebalance sequence every scope is owned by
    exactly one shard (no orphans, no double ownership — pinned by
    ``tests/test_ingest.py``).  ``loads`` carries the per-shard load
    estimates rebalancing decisions are made from (EWMA of
    members × batch rows per signature group, summed per shard).
    """

    workers: int
    executor: str
    assignment: Mapping
    loads: tuple = field(default=())

    def scopes_of(self, shard: int) -> tuple:
        """Scope keys owned by one shard, in assignment order."""
        keys = self.assignment.items()
        return tuple(key for key, owner in keys if owner == shard)


class _SigGroup:
    """Load bookkeeping for one sieve-signature's co-located scopes.

    Rebalancing moves whole groups — never single scopes out of one —
    so equal sieve signatures stay co-located and the serial run's
    sieve-pass count is preserved under any move sequence.
    """

    __slots__ = ("signature", "shard", "scopes", "members", "load")

    def __init__(self, signature: str, shard: int):
        self.signature = signature
        self.shard = shard
        self.scopes = 0
        self.members = 0
        #: EWMA of members × batch rows, updated once per push_batch.
        self.load = 0.0

    def __repr__(self) -> str:
        return (
            f"_SigGroup(shard={self.shard}, scopes={self.scopes}, "
            f"members={self.members}, load={self.load:.1f})"
        )


# ---------------------------------------------------------------------------
# Shard hosts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardSpec:
    """A picklable recipe for one shard's monitor.

    ``policy`` is the base (unsharded)
    :class:`~repro.service.ServicePolicy`; exactly one of
    ``preferences`` (per-user families) and ``clusters`` (shared
    families) carries the shard's scopes.  The spec — like every
    payload crossing a process boundary (rows as
    :class:`~repro.data.objects.Object`, preferences, clusters, stat
    snapshots) — must pickle, which is what lets the ``processes``
    executor rebuild identical shard state in a worker regardless of
    start method.

    ``codec_seed`` wires the shard into the façade's code space: the
    master :class:`~repro.core.compiled.DomainCodec` instance itself
    for in-process executors (shared directly), its interning journal
    for worker processes (replayed into a lockstep replica), ``None``
    for codec-less (interpreted-kernel) monitors.
    """

    policy: object
    schema: Schema
    preferences: tuple | None = None
    clusters: tuple | None = None
    codec_seed: object = None

    def build(self):
        """Construct the shard's monitor (in whichever process)."""
        if self.codec_seed is None:
            return self._construct()
        with codec_source(self.codec_seed):
            return self._construct()

    def _construct(self):
        if self.clusters is not None:
            return self.policy.build_from_clusters(
                list(self.clusters), self.schema
            )
        return self.policy.build(dict(self.preferences or ()), self.schema)


class _LocalShard:
    """A shard hosted in this process (``serial``/``threads``)."""

    __slots__ = ("monitor",)

    def __init__(self, spec: ShardSpec):
        self.monitor = spec.build()

    def push_batch(self, objects):
        return self.monitor.push_batch(objects)

    def push_encoded(self, objects, encoded):
        return self.monitor.ingest.push_encoded(objects, encoded)

    def push(self, obj):
        return self.monitor.push(obj)

    def call(self, name, *args, **kwargs):
        attr = getattr(self.monitor, name)
        return attr(*args, **kwargs) if callable(attr) else attr

    def stats_snapshot(self) -> dict:
        return self.monitor.stats.snapshot()

    def close(self) -> None:
        pass


def _shard_worker(conn, spec: ShardSpec) -> None:
    """Worker-process main loop: build the shard, serve commands.

    The loop reads raw bytes and dispatches on the first one: a
    :data:`_FRAME_MAGIC` byte is a data-plane wire frame — decoded
    against the replica codec and dispatched through
    ``IngestPipeline.push_encoded``, charging zero shard-side encode
    passes — anything else is a pickled ``(command, payload)`` tuple
    (the control plane, and the batch fallback of codec-less
    monitors).  Every reply carries the shard's current stats snapshot
    so the parent's aggregate stats never need an extra round trip.
    """
    monitor = spec.build()
    conn.send(("ok", (None, monitor.stats.snapshot())))
    while True:
        try:
            blob = conn.recv_bytes()
        except EOFError:
            break
        try:
            if blob[:1] == _FRAME_MAGIC:
                from repro.core import wire

                objects, encoded = wire.decode_frame(blob, monitor.codec)
                result = monitor.ingest.push_encoded(objects, encoded)
            else:
                command, payload = pickle.loads(blob)
                if command == "stop":
                    break
                if command == "push_batch":
                    result = monitor.push_batch(payload)
                elif command == "push":
                    result = monitor.push(payload)
                elif command == "codec_delta":
                    result = monitor.codec.apply_delta(payload)
                else:
                    name, args, kwargs = payload
                    attr = getattr(monitor, name)
                    result = (
                        attr(*args, **kwargs) if callable(attr) else attr
                    )
            reply = ("ok", (result, monitor.stats.snapshot()))
        except BaseException as error:  # noqa: BLE001 — relayed verbatim
            reply = ("error", error)
        try:
            conn.send(reply)
        except Exception:
            # Unpicklable result or error: degrade to a repr the parent
            # can always raise.
            conn.send(("error", ReproError(repr(reply[1]))))
    conn.close()


class _ProcessShard:
    """A shard hosted in a dedicated worker process.

    Commands and results travel over a duplex pipe; the worker owns the
    shard's kernels, memos and buffers for its whole life, so per-batch
    traffic is one wire frame out and the per-row target sets (plus a
    stats snapshot) back.  Every outbound payload is serialised here —
    frames verbatim, commands pickled — and charged to the façade's
    ``wire_bytes`` counter, so the data plane's cost is measured, not
    estimated.
    """

    __slots__ = ("_conn", "_process", "_stats", "_counters", "_finalizer",
                 "__weakref__")

    def __init__(self, spec: ShardSpec, counters: WireCounters | None = None):
        import multiprocessing

        context = multiprocessing.get_context()
        self._conn, child = context.Pipe()
        self._process = context.Process(
            target=_shard_worker, args=(child, spec), daemon=True
        )
        self._process.start()
        child.close()
        self._stats = {}
        self._counters = counters if counters is not None else WireCounters()
        self._finalizer = weakref.finalize(
            self, _ProcessShard._shutdown, self._conn, self._process
        )
        self._receive()  # the build acknowledgement

    def _receive(self):
        status, payload = self._conn.recv()
        if status == "error":
            raise payload
        result, self._stats = payload
        return result

    def send_blob(self, blob: bytes) -> None:
        """Ship pre-serialised bytes (a wire frame, or a pickled
        command shared across shards), charging their true size."""
        self._counters.wire_bytes += len(blob)
        self._conn.send_bytes(blob)

    def send_command(self, command: str, payload) -> None:
        self.send_blob(
            pickle.dumps((command, payload),
                         protocol=pickle.HIGHEST_PROTOCOL)
        )

    def push_batch(self, objects):
        self.send_command("push_batch", objects)
        return self._receive()

    def push(self, obj):
        self.send_command("push", obj)
        return self._receive()

    def call(self, name, *args, **kwargs):
        self.send_command("call", (name, args, kwargs))
        return self._receive()

    def stats_snapshot(self) -> dict:
        return dict(self._stats)

    @staticmethod
    def _shutdown(conn, process) -> None:
        try:
            conn.send(("stop", None))
        except Exception:
            pass
        process.join(timeout=5)
        if process.is_alive():
            process.terminate()
            process.join(timeout=5)
        conn.close()

    def close(self) -> None:
        if self._finalizer.alive:
            self._finalizer()


# ---------------------------------------------------------------------------
# Aggregate statistics
# ---------------------------------------------------------------------------


class ShardedStats:
    """The merged work counters of a sharded monitor.

    ``objects`` counts arrivals once (the façade coerces each row
    exactly once); comparison and delivery counters are summed over the
    shards — deliveries are disjoint across shards (each user lives in
    exactly one), so the sums equal the serial monitor's counters.
    ``encode_passes`` is the façade's own count: the master codec
    encodes each batch exactly once for any shard count, while
    frame-fed shards charge zero locally (DESIGN.md §14).
    """

    _SUMMED = (
        "delivered",
        "filter_comparisons",
        "verify_comparisons",
        "buffer_comparisons",
        "comparisons",
    )

    def __init__(self, monitor: "ShardedMonitor"):
        self._monitor = monitor
        self.objects = 0

    def _sum(self, key: str) -> int:
        shards = self._monitor.shard_stats()
        return sum(snapshot[key] for snapshot in shards)

    @property
    def delivered(self) -> int:
        return self._sum("delivered")

    @property
    def comparisons(self) -> int:
        return self._sum("comparisons")

    @property
    def encode_passes(self) -> int:
        """Façade-level coerce+encode sweeps (one per batch/push)."""
        return self._monitor.wire.encode_passes

    @encode_passes.setter
    def encode_passes(self, value: int) -> None:
        # The façade's IngestPipeline charges through this attribute,
        # exactly like a serial monitor's MonitorStats.
        self._monitor.wire.encode_passes = value

    def snapshot(self) -> dict[str, int]:
        merged = {"objects": self.objects}
        merged.update({key: 0 for key in self._SUMMED})
        for shard in self._monitor.shard_stats():
            for key in self._SUMMED:
                merged[key] += shard[key]
        merged["encode_passes"] = self.encode_passes
        return merged

    def __repr__(self) -> str:
        return (
            f"ShardedStats(objects={self.objects}, "
            f"delivered={self.delivered}, "
            f"comparisons={self.comparisons})"
        )


# ---------------------------------------------------------------------------
# The façade
# ---------------------------------------------------------------------------


class _ScopeRecord:
    """One cluster scope in serial (_states) order.

    The façade keeps its own copy of the cluster — maintained through
    the same ``with_user``/``without_user``/virtual rules the shards
    apply, so it stays equal to the shard-side one — which makes join
    decisions (and the ``clusters`` property) free of any shard round
    trip.  ``signature`` keys the scope into its co-location group.
    """

    __slots__ = ("cluster", "shard", "signature")

    def __init__(self, cluster: Cluster, shard: int, signature: str):
        self.cluster = cluster
        self.shard = shard
        self.signature = signature

    @property
    def users(self):
        return self.cluster.users


class ShardedMonitor:
    """A monitor-shaped façade over per-shard sub-monitors.

    Built by :meth:`~repro.service.ServicePolicy.build` (or
    ``build_from_clusters``) whenever the policy asks for more than one
    worker.  Each shard hosts a real monitor of the selected family
    over a deterministic subset of the scopes (:func:`shard_of` on the
    scope's sieve signature, overridden by rebalancing moves);
    ``push``/``push_batch`` coerce and encode each row once through the
    master codec, fan the batch out through the executor — compact wire
    frames to worker processes, by-reference ``push_encoded`` to
    in-process shards — and merge the per-row target sets in arrival
    order.  All churn, inspection and snapshot surfaces of the six
    families are preserved, so :class:`~repro.service.MonitorService`
    (and ``repro.state`` snapshots) drive a sharded monitor exactly
    like a serial one.
    """

    def __init__(
        self,
        policy,
        schema: Sequence[str],
        *,
        preferences: Mapping[UserId, Preference] | None = None,
        clusters: Sequence[Cluster] | None = None,
    ):
        if policy.workers < 2:
            raise ReproError("ShardedMonitor requires workers >= 2")
        self.policy = policy
        self.base_policy = policy.base()
        self.schema: Schema = tuple(schema)
        self.workers = int(policy.workers)
        self.executor_name = validate_executor(policy.executor)
        self.kernel_name = validate_kernel(policy.kernel)
        self.memo_enabled = bool(policy.memo)
        if policy.window is not None:
            self.window = int(policy.window)
        #: The master codec: the façade performs the one shared
        #: coerce+encode pass per batch against it, and every shard
        #: holds a lockstep replica (the same instance in-process, a
        #: journal replica in workers).  ``None`` under the interpreted
        #: kernel, whose monitors never encode.
        self.codec = (
            None
            if self.kernel_name == "interpreted"
            else DomainCodec(self.schema)
        )
        self.registry = None
        self.wire = WireCounters()
        self.ingest = IngestPipeline(self)
        self.stats = ShardedStats(self)
        self._preferences: dict[UserId, Preference] = {}
        #: user → owning shard (per-user families).
        self._owner: dict[UserId, int] = {}
        #: user → sieve signature (per-user families).
        self._signatures: dict[UserId, str] = {}
        #: Cluster scopes in serial (_states) order (shared families).
        self._records: list[_ScopeRecord] = []
        #: user → owning record, O(1) per-user routing (shared families).
        self._user_record: dict[UserId, _ScopeRecord] = {}
        #: sieve signature → co-location group (placement + load EWMA).
        self._groups: dict[str, _SigGroup] = {}
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False

        codec = self.codec
        shard_scopes: list[list] = [[] for _ in range(self.workers)]
        if policy.shared:
            for cluster in list(clusters or ()):
                if codec is not None:
                    codec.intern_preference(cluster.virtual)
                    for pref in cluster.members.values():
                        codec.intern_preference(pref)
                signature = sieve_signature(cluster.virtual, self.schema)
                shard = self._attach(
                    signature, members=len(cluster.members)
                )
                shard_scopes[shard].append(cluster)
                record = _ScopeRecord(cluster, shard, signature)
                self._records.append(record)
                for user, pref in cluster.members.items():
                    self._preferences[user] = pref
                    self._user_record[user] = record
            seed = self._codec_seed()
            specs = [
                ShardSpec(
                    self.base_policy,
                    self.schema,
                    clusters=tuple(scopes),
                    codec_seed=seed,
                )
                for scopes in shard_scopes
            ]
        else:
            for user, pref in dict(preferences or {}).items():
                if codec is not None:
                    codec.intern_preference(pref)
                signature = sieve_signature(pref, self.schema)
                shard = self._attach(signature)
                shard_scopes[shard].append((user, pref))
                self._preferences[user] = pref
                self._owner[user] = shard
                self._signatures[user] = signature
            seed = self._codec_seed()
            specs = [
                ShardSpec(
                    self.base_policy,
                    self.schema,
                    preferences=tuple(scopes),
                    codec_seed=seed,
                )
                for scopes in shard_scopes
            ]
        #: The replica codec version every worker process is known to
        #: hold; frames and delta flushes ship ``delta_since`` this.
        self._replica_version = codec.version if codec is not None else 0
        if self.executor_name == "processes":
            self._shards = [
                _ProcessShard(spec, self.wire) for spec in specs
            ]
        else:
            self._shards = [_LocalShard(spec) for spec in specs]

    def _codec_seed(self):
        """What a shard build adopts as its codec (DESIGN.md §14)."""
        if self.codec is None:
            return None
        if self.executor_name == "processes":
            return self.codec.journal
        return self.codec

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    @property
    def plan(self) -> ExecutionPlan:
        """The current scope → shard assignment (re-derived live, so it
        always reflects the post-churn, post-rebalance scope set)."""
        if self.policy.shared:
            assignment = {
                frozenset(record.users): record.shard
                for record in self._records
            }
        else:
            assignment = dict(self._owner)
        return ExecutionPlan(
            self.workers,
            self.executor_name,
            assignment,
            tuple(self._shard_loads()),
        )

    def shard_stats(self) -> list[dict]:
        """Per-shard stats snapshots (shard order).

        Each shard is a serial monitor over its scope subset, so each
        snapshot is byte-identical to an unsharded monitor built over
        the same scopes and fed the same batches — the per-scope half
        of the serial-equivalence contract, gated deterministically by
        ``benchmarks/test_shard_gate.py`` (which strips the
        :data:`~repro.metrics.counters.WIRE_KEYS`: a frame-fed shard
        legitimately charges zero encode passes).
        """
        return [shard.stats_snapshot() for shard in self._shards]

    def wire_stats(self) -> dict[str, int]:
        """The façade's wire-plane counters (DESIGN.md §14)."""
        return self.wire.snapshot()

    # ------------------------------------------------------------------
    # Signature groups and load accounting
    # ------------------------------------------------------------------

    def _group(self, signature: str) -> _SigGroup:
        group = self._groups.get(signature)
        if group is None:
            group = _SigGroup(signature, shard_of(signature, self.workers))
            self._groups[signature] = group
        return group

    def _attach(self, signature: str, members: int = 1) -> int:
        """Register one scope under its signature group; returns the
        owning shard (the group's current home, which rebalancing may
        have moved off the hash placement)."""
        group = self._group(signature)
        group.scopes += 1
        group.members += members
        return group.shard

    def _detach(self, signature: str, members: int = 1) -> None:
        group = self._groups[signature]
        group.scopes -= 1
        group.members -= members
        if group.scopes <= 0:
            del self._groups[signature]

    def _note_load(self, rows: int) -> None:
        """Fold one batch into every group's load EWMA (same float
        arithmetic on every executor, so rebalancing decisions are
        deterministic across them)."""
        for group in self._groups.values():
            sample = group.members * rows
            group.load += LOAD_ALPHA * (sample - group.load)

    def _weight(self, group: _SigGroup) -> float:
        """A group's current load estimate; the member count stands in
        until a batch has sampled the EWMA."""
        return group.load if group.load > 0.0 else float(group.members)

    def _shard_loads(self) -> list[float]:
        loads = [0.0] * self.workers
        for group in self._groups.values():
            loads[group.shard] += self._weight(group)
        return loads

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    @staticmethod
    def _drain(shards) -> list:
        """Collect one queued reply per process shard.

        Every shard's reply is read even when one errors: leaving a
        queued reply behind would desync that pipe, silently serving
        this round's results to the *next* command.
        """
        results = []
        error = None
        for shard in shards:
            try:
                results.append(shard._receive())
            except BaseException as exc:  # noqa: BLE001 — re-raised
                if error is None:
                    error = exc
                results.append(None)
        if error is not None:
            raise error
        return results

    def _thread_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-shard",
            )
        return self._pool

    def _send_frames(self, objects, encoded) -> None:
        """Ship one batch to every worker process.

        With a codec: one compact wire frame — encoded once, sent to
        every shard — carrying the codec delta since the replicas' last
        known version.  Without one (interpreted kernel): the pickled
        ``push_batch`` command, shared across shards and charged to the
        same counter.
        """
        shards = self._shards
        codec = self.codec
        if codec is None:
            blob = pickle.dumps(
                ("push_batch", objects), protocol=pickle.HIGHEST_PROTOCOL
            )
            for shard in shards:
                shard.send_blob(blob)
            return
        from repro.core import wire

        delta = codec.delta_since(self._replica_version)
        frame = wire.encode_frame(
            objects, encoded, delta, self._replica_version
        )
        self._replica_version = codec.version
        for shard in shards:
            shard.send_blob(frame)
        self.wire.codec_delta_entries += len(delta) * len(shards)

    def _flush_codec_delta(self) -> None:
        """Bring worker-process replicas up to the master's version.

        Called before any control-plane op that makes a shard compile
        kernels or encode history: the replica must already hold every
        value the op touches, so it never interns independently.  A
        no-op for in-process executors (they share the master) and when
        nothing new was interned.
        """
        codec = self.codec
        if codec is None:
            return
        if self.executor_name != "processes":
            self._replica_version = codec.version
            return
        delta = codec.delta_since(self._replica_version)
        if not delta:
            return
        blob = pickle.dumps(
            ("codec_delta", delta), protocol=pickle.HIGHEST_PROTOCOL
        )
        shards = self._shards
        for shard in shards:
            shard.send_blob(blob)
        self.wire.codec_delta_entries += len(delta) * len(shards)
        self._drain(shards)
        self._replica_version = codec.version

    def _run_batch(self, objects, encoded) -> list:
        shards = self._shards
        if self.executor_name == "threads":
            jobs = self._thread_pool().map(
                lambda shard: shard.push_encoded(objects, encoded), shards
            )
            return list(jobs)
        if self.executor_name == "processes":
            self._send_frames(objects, encoded)
            return self._drain(shards)
        return [shard.push_encoded(objects, encoded) for shard in shards]

    def push(self, row) -> frozenset[UserId]:
        """Process one arrival; returns the target users of the object.

        A push is a batch of one: it rides the same encode-once frame
        path as :meth:`push_batch` (the intra-batch sieve proves a
        singleton chunk charge-free, so counts stay serial-identical).
        """
        return self.push_batch([row])[0]

    def push_batch(self, rows) -> list[frozenset[UserId]]:
        """Process many arrivals as one batch.

        Rows are coerced and encoded once against the master codec,
        then every shard processes the whole batch over its own scopes
        — worker processes from one compact wire frame, in-process
        shards from the same lists by reference; per-row target sets
        are the unions of the shards' disjoint answers, in arrival
        order — byte-identical to the serial path.
        """
        objects, encoded = self.ingest.coerce_encode(rows)
        self.stats.objects += len(objects)
        if not objects:
            return []
        self._note_load(len(objects))
        per_shard = self._run_batch(objects, encoded)
        return [
            frozenset().union(*(results[i] for results in per_shard))
            for i in range(len(objects))
        ]

    def push_all(self, rows) -> list[frozenset[UserId]]:
        """Alias of :meth:`push_batch`, kept for API compatibility."""
        return self.push_batch(rows)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def users(self) -> tuple[UserId, ...]:
        return tuple(self._preferences)

    @property
    def preferences(self) -> dict[UserId, Preference]:
        """Current user → preference mapping (a copy; safe to mutate)."""
        return dict(self._preferences)

    @property
    def clusters(self) -> tuple[Cluster, ...]:
        """Current clusters in serial (construction/churn) order.

        Served from the façade's own record copies — no shard round
        trip, and the similarity-representation caches on the cluster
        objects survive across churn ops.
        """
        if not self.policy.shared:
            raise AttributeError("per-user monitors have no clusters")
        return tuple(record.cluster for record in self._records)

    @property
    def alive(self) -> tuple[Object, ...]:
        """The current window contents (sliding policies only).

        Every shard sees every arrival, so each keeps an identical
        alive window; the first shard's copy is authoritative.
        """
        if self.policy.window is None:
            raise AttributeError("append-only monitors have no window")
        return self._shards[0].call("alive")

    def _owning_shard(self, user: UserId) -> int:
        if not self.policy.shared:
            return self._owner[user]
        return self._user_record[user].shard

    def _call_owner(self, user: UserId, name: str, *args):
        return self._shards[self._owning_shard(user)].call(name, *args)

    def frontier(self, user: UserId) -> tuple[Object, ...]:
        """Current Pareto frontier ``P_c`` of *user*, in arrival order."""
        return self._call_owner(user, "frontier", user)

    def frontier_ids(self, user: UserId) -> frozenset[int]:
        """Object ids of ``P_c``."""
        return frozenset(obj.oid for obj in self.frontier(user))

    # The per-family inspection surfaces are gated *properties*
    # returning closures: feature detection by getattr (repro.state
    # does this) must see AttributeError on families that lack the
    # surface, exactly like the serial monitors.

    @property
    def shared_frontier(self):
        """``P_U`` accessor, by member user or serial cluster index
        (shared families only)."""
        if not self.policy.shared:
            raise AttributeError("per-user monitors have no P_U")

        def shared_frontier(user_or_index) -> tuple[Object, ...]:
            is_index = (
                isinstance(user_or_index, int)
                and user_or_index not in self._preferences
            )
            if is_index:
                record = self._records[user_or_index]
                user_or_index = next(iter(record.users))
            return self._call_owner(
                user_or_index, "shared_frontier", user_or_index
            )

        return shared_frontier

    @property
    def shared_buffer(self):
        """``PB_U`` accessor by member user (shared sliding family)."""
        if not self.policy.shared or self.policy.window is None:
            raise AttributeError("no shared buffers on this family")
        return lambda user: self._call_owner(user, "shared_buffer", user)

    @property
    def buffer(self):
        """``PB_c`` accessor by user (per-user sliding family)."""
        if self.policy.shared or self.policy.window is None:
            raise AttributeError("no per-user buffers on this family")
        return lambda user: self._call_owner(user, "buffer", user)

    @property
    def buffers(self):
        """All-buffer accessor (sliding families), concatenated shard
        by shard — not the serial monitor's scope order; use the
        per-scope accessors for order-sensitive comparisons."""
        if self.policy.window is None:
            raise AttributeError("append-only monitors have no buffers")

        def buffers() -> list[tuple[Object, ...]]:
            merged: list[tuple[Object, ...]] = []
            for shard in self._shards:
                merged.extend(shard.call("buffers"))
            return merged

        return buffers

    def targets_of(self, oid: int) -> frozenset[UserId]:
        """Current ``C_o`` of a past object (requires tracking)."""
        if not self.policy.track_targets:
            raise ReproError(
                "target tracking is off; construct the monitor with "
                "track_targets=True"
            )
        merged: frozenset[UserId] = frozenset()
        for shard in self._shards:
            merged |= shard.call("targets_of", oid)
        return merged

    def __repr__(self) -> str:
        return (
            f"ShardedMonitor({self.workers} shards, "
            f"{self.executor_name}, {len(self._preferences)} users)"
        )

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------

    def add_user(
        self,
        user: UserId,
        preference: Preference,
        history: Sequence[Object] = (),
        *,
        h: float | None = None,
        measure=None,
        theta1: float | None = None,
        theta2: float | None = None,
    ) -> None:
        """Register a new user mid-stream (any family).

        Per-user families route the user to its signature group's
        shard.  Shared families decide the cluster join *globally* —
        :func:`~repro.core.clusters.best_matching_cluster` over the
        serial-ordered cluster list, exactly as an unsharded monitor
        would (the similarity normalisation depends on the all-cluster
        attribute union, so a shard-local decision could diverge) —
        then execute a targeted retire + install inside the owning
        shards.  Before any shard compiles the new orders, the
        preference's domains (and any append-only history) are interned
        into the master codec and the delta flushed to worker replicas,
        so replicas never intern independently.  The plan is re-derived
        from the mutated scope set, then rebalanced if churn has skewed
        the load.
        """
        if user in self._preferences:
            raise ValueError(f"user {user!r} already registered")
        windowed = self.policy.window is not None
        if windowed:
            if history:
                # The serial sliding families take no history (the
                # alive window is the relevant past); dropping it
                # silently — after coercion consumed object ids — would
                # also drift every later oid from the serial run.
                raise TypeError(
                    "sliding-window monitors take no history; the "
                    "alive window is replayed instead"
                )
            history = []
        else:
            history = [self.ingest.coerce(row) for row in history]
        codec = self.codec
        if codec is not None:
            codec.intern_preference(preference)
            if history:
                # The shard will encode the history during its replay;
                # interning it here first keeps the master the single
                # interning authority (same codes everywhere).
                codec.encode_many([obj.values for obj in history])
        if not self.policy.shared:
            signature = sieve_signature(preference, self.schema)
            shard = self._attach(signature)
            self._flush_codec_delta()
            if windowed:
                self._shards[shard].call("add_user", user, preference)
            else:
                self._shards[shard].call(
                    "add_user", user, preference, history
                )
            self._owner[user] = shard
            self._signatures[user] = signature
            self._preferences[user] = preference
            self.rebalance()
            return
        index = None
        may_join = h is not None and (
            windowed or history or not self.stats.objects
        )
        if may_join:
            index = best_matching_cluster(
                list(self.clusters), preference, h, measure
            )
        if index is None:
            cluster = Cluster({user: preference}, preference)
            signature = sieve_signature(cluster.virtual, self.schema)
            record = _ScopeRecord(
                cluster, self._attach(signature), signature
            )
            self._flush_codec_delta()
            self._install(record, history)
            self._records.append(record)
        else:
            record = self._records[index]
            merged = self._merged_cluster(
                record.cluster, user, preference, theta1, theta2
            )
            if codec is not None:
                codec.intern_preference(merged.virtual)
            signature = sieve_signature(merged.virtual, self.schema)
            self._flush_codec_delta()
            # Retire in the owning shard, install at the *merged*
            # virtual's group home: a join that drifts the virtual
            # re-homes the cluster, preserving equal-sieve-orders
            # co-location (and hence serial-identical comparison
            # totals) under churn — at exactly the serial rebuild
            # cost, since a serial join is retire + replay too.
            local = self._shard_cluster_index(record)
            self._shards[record.shard].call("retire_cluster", local)
            self._detach(
                record.signature, members=len(record.cluster.members)
            )
            record.cluster = merged
            record.signature = signature
            record.shard = self._attach(
                signature, members=len(merged.members)
            )
            self._install(record, history)
        for member in record.users:
            self._user_record[member] = record
        self._preferences[user] = preference
        self.rebalance()

    def _install(self, record: _ScopeRecord, history) -> None:
        """Install the record's cluster into its shard (windowed
        installs replay the shard's own — identical — alive window)."""
        shard = self._shards[record.shard]
        if self.policy.window is not None:
            shard.call("install_cluster", record.cluster)
        else:
            shard.call("install_cluster", record.cluster, history)

    def _merged_cluster(self, cluster: Cluster, user: UserId,
                        preference: Preference, theta1,
                        theta2) -> Cluster:
        """The post-join cluster, under the exact rule the serial
        families apply (:func:`repro.core.filter_verify.join_virtual`,
        so the two can never drift apart)."""
        virtual = join_virtual(
            cluster, user, preference, self.policy.approximate, theta1,
            theta2
        )
        return cluster.with_user(user, preference, virtual=virtual)

    def _shard_cluster_index(self, record: _ScopeRecord) -> int:
        """The record's cluster index inside its shard's ``_states``
        list, matched by member set (unique: a user lives in exactly
        one cluster)."""
        members = frozenset(record.users)
        clusters = self._shards[record.shard].call("clusters")
        for index, cluster in enumerate(clusters):
            if frozenset(cluster.users) == members:
                return index
        raise ReproError("scope record detached from its shard")

    def remove_user(self, user: UserId) -> None:
        """Unregister a user from the owning shard; the plan is
        re-derived from the mutated scope set, then rebalanced if the
        departure skewed the load."""
        if user not in self._preferences:
            raise KeyError(user)
        shard = self._owning_shard(user)
        self._shards[shard].call("remove_user", user)
        del self._preferences[user]
        if not self.policy.shared:
            del self._owner[user]
            self._detach(self._signatures.pop(user))
            self.rebalance()
            return
        record = self._user_record.pop(user)
        # Mirror the shard: membership shrinks, the stored virtual is
        # kept (a sound, conservative sieve — DESIGN.md §11), so the
        # scope's placement never moves on removal.
        cluster = record.cluster.without_user(user)
        if cluster is None:
            self._detach(
                record.signature, members=len(record.cluster.members)
            )
            self._records.remove(record)
        else:
            self._groups[record.signature].members -= 1
            record.cluster = cluster
        self.rebalance()

    # ------------------------------------------------------------------
    # Rebalancing
    # ------------------------------------------------------------------

    def rebalance(self, force: bool = False) -> int:
        """Even out per-shard load by moving whole signature groups.

        Triggered after every churn op (and available explicitly);
        never fires mid-batch, so move-free feeds keep the pure hash
        placement.  Greedy and deterministic: while the busiest shard's
        load exceeds :data:`REBALANCE_SKEW` × the mean (*force* skips
        the threshold), move its lightest group to the lightest shard —
        ties broken by signature text and shard index — stopping as
        soon as a move would not strictly improve the busiest shard.
        Moves transfer frontier/buffer state verbatim (zero comparisons
        charged) and whole groups only (co-location preserved), so the
        serial-equivalence contract survives any rebalance.  Returns
        the number of groups moved.
        """
        moved = 0
        while True:
            loads = self._shard_loads()
            total = sum(loads)
            if total <= 0.0:
                break
            mean = total / self.workers
            order = range(self.workers)
            busiest = max(order, key=lambda s: (loads[s], -s))
            lightest = min(order, key=lambda s: (loads[s], s))
            if not force and loads[busiest] <= REBALANCE_SKEW * mean:
                break
            candidates = sorted(
                (
                    group
                    for group in self._groups.values()
                    if group.shard == busiest
                ),
                key=lambda group: (self._weight(group), group.signature),
            )
            if len(candidates) <= 1 or busiest == lightest:
                break
            group = candidates[0]
            weight = self._weight(group)
            if loads[lightest] + weight >= loads[busiest]:
                break
            self._move_group(group, lightest)
            moved += 1
        return moved

    def split_shard(self, shard: int) -> int:
        """Move half of *shard*'s signature groups (lightest first) off
        it, each to the then-lightest other shard.  Returns the number
        of groups moved — the explicit form of a rebalance split, used
        by the CI rebalance smoke."""
        if not 0 <= shard < self.workers:
            raise ReproError(
                f"shard index {shard} out of range 0..{self.workers - 1}"
            )
        groups = sorted(
            (g for g in self._groups.values() if g.shard == shard),
            key=lambda g: (self._weight(g), g.signature),
        )
        moved = 0
        for group in groups[: len(groups) // 2]:
            loads = self._shard_loads()
            dest = min(
                (s for s in range(self.workers) if s != shard),
                key=lambda s: (loads[s], s),
            )
            self._move_group(group, dest)
            moved += 1
        return moved

    def merge_shards(self, source: int, dest: int) -> int:
        """Move every signature group on *source* into *dest* (the
        explicit form of a rebalance merge).  Returns groups moved."""
        for index in (source, dest):
            if not 0 <= index < self.workers:
                raise ReproError(
                    f"shard index {index} out of range "
                    f"0..{self.workers - 1}"
                )
        if source == dest:
            raise ReproError("merge_shards needs two distinct shards")
        groups = sorted(
            (g for g in self._groups.values() if g.shard == source),
            key=lambda g: g.signature,
        )
        for group in groups:
            self._move_group(group, dest)
        return len(groups)

    def _move_group(self, group: _SigGroup, dest: int) -> None:
        """Relocate every scope of one signature group to *dest*.

        Export/adopt transfers frontier (and buffer) state verbatim —
        members, code rows, memo verdicts — so a move charges zero
        comparisons and every subsequent count stays serial-identical;
        moving the group as a unit preserves co-location.
        """
        source = group.shard
        if dest == source:
            return
        if self.policy.shared:
            for record in self._records:
                if record.signature != group.signature:
                    continue
                local = self._shard_cluster_index(record)
                exported = self._shards[source].call(
                    "export_cluster", local
                )
                self._shards[dest].call("adopt_cluster", exported)
                record.shard = dest
        else:
            for user, signature in self._signatures.items():
                if signature != group.signature:
                    continue
                exported = self._shards[source].call("export_user", user)
                self._shards[dest].call("adopt_user", user, *exported)
                self._owner[user] = dest
        group.shard = dest

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release executor resources (worker processes, thread pool).

        Idempotent; the façade is unusable afterwards.  ``serial`` and
        ``threads`` monitors work without ever calling it; the
        ``processes`` executor also cleans up via GC finalizers, but an
        explicit close (or the context-manager form) is prompter.
        """
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ShardedMonitor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
