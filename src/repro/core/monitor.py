"""One-call monitor construction: the legacy front door.

The service-first API lives in :mod:`repro.service`
(:class:`~repro.service.MonitorService`): construct once from a schema
plus a policy, then subscribe/unsubscribe users while objects stream.
:func:`create_monitor` remains as a thin compatibility wrapper for the
original construct-with-a-frozen-user-base style — it packages its
keyword arguments into a :class:`~repro.service.ServicePolicy` and
builds the matching monitor, running the Section 5 clustering pipeline
when sharing is requested:

>>> monitor = create_monitor(users, schema)                  # shared, exact
>>> monitor = create_monitor(users, schema, shared=False)    # Baseline
>>> monitor = create_monitor(users, schema, approximate=True)
>>> monitor = create_monitor(users, schema, window=3200)     # sliding
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.baseline import MonitorBase
from repro.core.clusters import UserId
from repro.core.preference import Preference
from repro.service import ServicePolicy


def create_monitor(preferences: Mapping[UserId, Preference],
                   schema: Sequence[str], *, shared: bool = True,
                   approximate: bool = False, window: int | None = None,
                   h: float = 0.55, measure: str | None = None,
                   theta1: float = 6000, theta2: float = 0.5,
                   track_targets: bool = False,
                   kernel: str = "compiled",
                   memo: bool = True, workers: int = 1,
                   executor: str = "serial") -> MonitorBase:
    """Build the appropriate monitor for a fixed user base.

    Prefer :class:`~repro.service.MonitorService` for anything
    long-lived — it supports subscription churn, sink-based delivery and
    self-contained snapshots on the same six monitor families.

    Parameters
    ----------
    preferences:
        user id → :class:`~repro.core.preference.Preference`.
    schema:
        attribute names, aligned with the objects that will be pushed.
    shared:
        share computation across similar users (Algorithm 2 family).
        ``False`` selects the per-user Baseline (Algorithm 1 family).
    approximate:
        with ``shared``, use approximate common preference relations
        (Algorithm 3) — faster, with measurable recall loss (Section 6.2).
    window:
        sliding-window size ``W`` for alive-object semantics (Section 7);
        ``None`` keeps the append-only semantics.
    h, measure:
        clustering branch cut and similarity measure (Section 5 / 6.3).
        The default measure follows the paper: weighted Jaccard for exact
        sharing, its frequency-vector variant for approximate sharing.
    theta1, theta2:
        Algorithm 3 thresholds (only with ``approximate``).
    track_targets:
        maintain live ``C_o`` sets queryable via ``monitor.targets_of``.
    kernel:
        dominance kernel, one of :data:`~repro.core.compiled.KERNELS`:
        ``"compiled"`` (default, value interning + bitset dominance
        matrices — see :mod:`repro.core.compiled`), ``"vector"`` (the
        same code space decided by numpy block ops over columnar
        frontiers — see :mod:`repro.core.vector`; byte-identical
        results, vector-equivalent comparison accounting per
        DESIGN.md §13) or ``"interpreted"`` (the pure-Python reference
        path).  Compiled-family monitors dedupe equal orders through a
        shared :class:`~repro.core.compiled.OrderRegistry`, so
        duplicated preferences cost O(1) amortised compiled state;
        their ``push_batch`` runs the intra-batch sieve of
        :mod:`repro.core.batch`, cutting comparisons (not just
        overhead) on duplicate-heavy streams while returning per-row
        results identical to sequential ``push``.
    memo:
        enable the cross-batch verdict memo (default).  Every monitor
        ingests through the shared arrival plane
        (:mod:`repro.core.ingest`); with the memo on, value tuples
        whose frontier verdict is still valid — validated against each
        frontier's mutation epoch — are decided in O(1) with no
        comparisons charged, extending the sieve's duplicate path
        across batch and window boundaries.  Results are byte-identical
        either way (see DESIGN.md §10).
    workers, executor:
        the sharded ingest plane (DESIGN.md §12).  ``workers > 1``
        partitions the monitor's scopes into deterministic shards and
        drives batches through *executor* — ``"serial"`` (reference),
        ``"threads"`` or ``"processes"`` — with notifications,
        frontiers and buffers byte-identical to the serial path.
    """
    policy = ServicePolicy(
        shared=shared, approximate=approximate, window=window, h=h,
        measure=measure, theta1=theta1, theta2=theta2,
        track_targets=track_targets, kernel=kernel, memo=memo,
        workers=workers, executor=executor)
    return policy.build(preferences, schema)
