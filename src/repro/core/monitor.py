"""One-call monitor construction: the library's front door.

The six monitor classes cover a 2×3 design space (append-only vs sliding
window; per-user vs shared vs shared-approximate).  :func:`create_monitor`
picks the right one from keyword arguments, running the clustering
pipeline when sharing is requested:

>>> monitor = create_monitor(users, schema)                  # shared, exact
>>> monitor = create_monitor(users, schema, shared=False)    # Baseline
>>> monitor = create_monitor(users, schema, approximate=True)
>>> monitor = create_monitor(users, schema, window=3200)     # sliding
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.baseline import Baseline, MonitorBase
from repro.core.clusters import Cluster, UserId
from repro.core.filter_verify import FilterThenVerify, FilterThenVerifyApprox
from repro.core.preference import Preference
from repro.core.sliding import (BaselineSW, FilterThenVerifyApproxSW,
                                FilterThenVerifySW)


def create_monitor(preferences: Mapping[UserId, Preference],
                   schema: Sequence[str], *, shared: bool = True,
                   approximate: bool = False, window: int | None = None,
                   h: float = 0.55, measure: str | None = None,
                   theta1: float = 6000, theta2: float = 0.5,
                   track_targets: bool = False,
                   kernel: str = "compiled",
                   memo: bool = True) -> MonitorBase:
    """Build the appropriate monitor for a user base.

    Parameters
    ----------
    preferences:
        user id → :class:`~repro.core.preference.Preference`.
    schema:
        attribute names, aligned with the objects that will be pushed.
    shared:
        share computation across similar users (Algorithm 2 family).
        ``False`` selects the per-user Baseline (Algorithm 1 family).
    approximate:
        with ``shared``, use approximate common preference relations
        (Algorithm 3) — faster, with measurable recall loss (Section 6.2).
    window:
        sliding-window size ``W`` for alive-object semantics (Section 7);
        ``None`` keeps the append-only semantics.
    h, measure:
        clustering branch cut and similarity measure (Section 5 / 6.3).
        The default measure follows the paper: weighted Jaccard for exact
        sharing, its frequency-vector variant for approximate sharing.
    theta1, theta2:
        Algorithm 3 thresholds (only with ``approximate``).
    track_targets:
        maintain live ``C_o`` sets queryable via ``monitor.targets_of``.
    kernel:
        dominance kernel: ``"compiled"`` (default, value interning +
        bitset dominance matrices — see :mod:`repro.core.compiled`) or
        ``"interpreted"`` (the pure-Python reference path).  Compiled
        monitors dedupe equal orders through a shared
        :class:`~repro.core.compiled.OrderRegistry`, so duplicated
        preferences cost O(1) amortised compiled state; their
        ``push_batch`` runs the intra-batch sieve of
        :mod:`repro.core.batch`, cutting comparisons (not just
        overhead) on duplicate-heavy streams while returning per-row
        results identical to sequential ``push``.
    memo:
        enable the cross-batch verdict memo (default).  Every monitor
        ingests through the shared arrival plane
        (:mod:`repro.core.ingest`); with the memo on, value tuples
        whose frontier verdict is still valid — validated against each
        frontier's mutation epoch — are decided in O(1) with no
        comparisons charged, extending the sieve's duplicate path
        across batch and window boundaries.  Results are byte-identical
        either way (see DESIGN.md §10).
    """
    if approximate and not shared:
        raise ValueError("approximate=True requires shared=True "
                         "(approximation lives in the cluster sieve)")
    if not shared:
        if window is None:
            return Baseline(preferences, schema, track_targets, kernel,
                            memo)
        return BaselineSW(preferences, schema, window, track_targets,
                          kernel, memo)

    from repro.clustering.hierarchical import cluster_users

    if measure is None:
        measure = ("approx_weighted_jaccard" if approximate
                   else "weighted_jaccard")
    groups = cluster_users(preferences, h=h, measure=measure)
    if approximate:
        clusters = [Cluster.approximate(group, theta1, theta2)
                    for group in groups]
    else:
        clusters = [Cluster.exact(group) for group in groups]
    if window is None:
        factory = FilterThenVerifyApprox if approximate else \
            FilterThenVerify
        return factory(clusters, schema, track_targets, kernel, memo)
    factory = FilterThenVerifyApproxSW if approximate else \
        FilterThenVerifySW
    return factory(clusters, schema, window, track_targets, kernel, memo)
