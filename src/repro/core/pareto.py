"""Incremental Pareto-frontier maintenance for a single preference.

:class:`ParetoFrontier` implements the ``updateParetoFrontier`` procedure of
Algorithm 1 — the classic append-only skyline insert generalised to strict
partial orders — plus the auxiliary operations the sliding-window
algorithms of Section 7 need (membership, discard, mend-insert).

The frontier relies on two standard facts:

* it suffices to compare an incoming object against frontier members only
  (anything dominated by a non-member is transitively dominated by a
  member);
* an incoming object that dominates some member cannot itself be dominated
  or be identical to another member, so a single scan with early exit is
  enough.

The scan itself is delegated to a dominance kernel
(:mod:`repro.core.compiled`): constructed from plain schema-aligned
:class:`PartialOrder` sequences the frontier runs the interpreted
reference path; constructed from a :class:`~repro.core.compiled.
CompiledKernel` the scan works on interned integer codes, kept in a list
parallel to the members.

Epochs and the cross-batch verdict memo (DESIGN.md §10)
-------------------------------------------------------

Scan verdicts depend only on the kernel's orders and on the *set of
distinct value tuples* currently on the frontier — never on how many
identical copies of a value are members, nor on which object ids carry
them.  Both structures therefore track a **mutation epoch**: a stamp,
drawn from one process-wide counter, that is renewed exactly when the
distinct-value set changes (a value's first copy arrives, or its last
copy is evicted/discarded/expired).  Duplicate appends and
duplicate-copy removals leave the epoch untouched, because they cannot
change any future verdict.

The epoch makes verdicts memoisable across batches: each kernel carries
a memo mapping a value key to per-frontier ``(epoch, undominated?)``
entries.  An entry whose epoch still equals the frontier's current epoch
replays its verdict in O(1) — no scan, no comparisons charged — which is
sound because globally unique stamps can never validate against a
different frontier or a mutated one.  Hot objects recurring across
batch (and window) boundaries thus keep the O(1) duplicate path that the
intra-batch sieve of :mod:`repro.core.batch` only provides within one
batch.
"""

from __future__ import annotations

from itertools import count
from typing import NamedTuple

from repro.core.compiled import as_kernel
from repro.data.objects import Object
from repro.metrics.counters import Counter


class AddResult(NamedTuple):
    """Outcome of offering an object to a frontier."""

    is_pareto: bool
    evicted: tuple[Object, ...]


#: Shared results for the two overwhelmingly common no-eviction
#: outcomes, so the hot insert path allocates nothing extra.
_ADDED = AddResult(True, ())
_REJECTED = AddResult(False, ())

#: One process-wide stamp source for frontier/buffer identities and
#: mutation epochs.  Uniqueness is the invalidation argument: a memo
#: entry records the stamp of the exact (structure, distinct-value-set)
#: state it was computed against, so it can only validate against that
#: same structure in that same state.
_STAMPS = count(1)

#: Verdict-memo size guard: past this many distinct value keys the
#: kernel-wide memo is dropped wholesale.  High-cardinality streams gain
#: nothing from memoisation anyway; hot replayed streams — the memo's
#: target — stay far below the limit.
MEMO_LIMIT = 1 << 16

#: Removal batches at or below this size compact the parallel member
#: lists with ``del`` (a C-level memmove per index) instead of a full
#: list rebuild; almost every eviction/expiry batch is far below it.
_SMALL_DELETE = 32


def drop_sorted(members: list, codes: list, indices) -> None:
    """Remove *indices* (ascending) from the parallel lists in place.

    The common case — a handful of removals from a long list — is a few
    reversed ``del`` statements; only large batches pay for a rebuild.
    """
    if len(indices) <= _SMALL_DELETE:
        for i in reversed(indices):
            del members[i]
            del codes[i]
        return
    gone = set(indices)
    members[:] = [m for i, m in enumerate(members) if i not in gone]
    codes[:] = [c for i, c in enumerate(codes) if i not in gone]


class EpochTracked:
    """Mutation-epoch bookkeeping shared by frontier and buffer.

    Subclasses keep ``_members`` / ``_codes`` parallel lists; this base
    maintains a live multiplicity per distinct value key and renews
    :attr:`epoch` exactly when the distinct-value set changes.  The key
    of a member is its encoded tuple under a compiled kernel and its raw
    value tuple under the interpreted one (the codec is injective, so
    the two key spaces memoise identically).
    """

    __slots__ = ("_keycounts", "_epoch", "_columns", "_dup_oids")

    def _init_epoch(self) -> None:
        self._keycounts: dict = {}
        self._epoch = next(_STAMPS)
        #: Columnar mirror of ``_codes`` (``repro.core.vector``), kept in
        #: lockstep by every mutation; None for non-columnar kernels.
        self._columns = None
        #: True once any member was admitted while another member already
        #: carried its oid (a caller pushing the same Object instance
        #: twice).  Until then — always, in practice — removal by oid can
        #: stop at the first match.
        self._dup_oids = False

    def _note_admitted_oid(self, oid: int) -> None:
        """Track *oid* in ``_ids``, remembering duplicate admissions."""
        ids = self._ids
        if oid in ids:
            self._dup_oids = True
        else:
            ids.add(oid)

    @property
    def epoch(self) -> int:
        """Current mutation epoch (renewed on distinct-value changes)."""
        return self._epoch

    def holds_key(self, key) -> bool:
        """True iff some member carries this value key (codes tuple
        under a compiled kernel, raw value tuple otherwise).

        The sliding monitors use this to skip mend scans: when an
        expiring frontier member leaves an identical copy behind, the
        copy still dominates everything the expired one did, so no
        buffered object can have been released.
        """
        return bool(self._keycounts.get(key))

    def _key_at(self, index: int):
        codes = self._codes[index]
        return codes if codes is not None else self._members[index].values

    def _note_insert(self, key) -> None:
        counts = self._keycounts
        if counts.get(key):
            counts[key] += 1
        else:
            counts[key] = 1
            self._epoch = next(_STAMPS)

    def _note_removals(self, keys) -> None:
        counts = self._keycounts
        vanished = False
        for key in keys:
            left = counts[key] - 1
            if left:
                counts[key] = left
            else:
                del counts[key]
                vanished = True
        if vanished:
            self._epoch = next(_STAMPS)

    def _compact_remove(self, oid: int) -> None:
        """Drop the member(s) carrying *oid*, maintaining keys and epoch."""
        members = self._members
        first = -1
        for i, member in enumerate(members):
            if member.oid == oid:
                first = i
                break
        if first < 0:
            return
        if not self._dup_oids:
            self._note_removals((self._key_at(first),))
            del members[first]
            del self._codes[first]
            if self._columns is not None:
                self._columns.delete((first,))
            return
        removed = [i for i in range(first, len(members))
                   if members[i].oid == oid]
        self._note_removals([self._key_at(i) for i in removed])
        drop_sorted(members, self._codes, removed)
        if self._columns is not None:
            self._columns.delete(removed)


class ParetoFrontier(EpochTracked):
    """The Pareto frontier ``P`` of an append-only object sequence.

    Members are kept in arrival order, which the sliding-window mend logic
    depends on (dominators inside a Pareto-frontier buffer always precede
    the objects they dominate — see ``repro.core.sliding``).

    With ``memo=True`` (the default) the frontier consults its kernel's
    cross-batch verdict memo before scanning: a value tuple whose verdict
    was recorded at the frontier's current epoch is decided in O(1) with
    no comparisons charged, and with results byte-identical to the scan
    it skipped (see the module docstring for the invalidation argument).
    """

    __slots__ = ("_kernel", "_counter", "_members", "_codes", "_ids",
                 "_registry", "_owner", "_uid", "_memo")

    def __init__(self, orders, counter: Counter | None = None,
                 registry=None, owner=None, memo: bool = True):
        self._kernel = as_kernel(orders)
        self._counter = counter if counter is not None else Counter()
        self._members: list[Object] = []
        #: Encoded value tuples parallel to ``_members`` (None entries
        #: under the interpreted kernel).
        self._codes: list = []
        self._ids: set[int] = set()
        # Optional live C_o bookkeeping (repro.core.targets): when set,
        # every membership change is reported as (owner, oid).
        self._registry = registry
        self._owner = owner
        self._uid = next(_STAMPS)
        self._memo = bool(memo)
        self._init_epoch()
        self._columns = self._kernel.new_columns()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def members(self) -> list[Object]:
        """Current frontier members in arrival order (read-only view)."""
        return self._members

    @property
    def member_codes(self) -> list:
        """Encoded member tuples, parallel to :attr:`members`."""
        return self._codes

    @property
    def kernel(self):
        """The dominance kernel this frontier scans with."""
        return self._kernel

    @property
    def ids(self) -> frozenset[int]:
        """Object ids of the current members."""
        return frozenset(self._ids)

    @property
    def counter(self) -> Counter:
        """The comparison counter charged by this frontier."""
        return self._counter

    @property
    def memo_enabled(self) -> bool:
        """Whether this frontier consults the kernel's verdict memo."""
        return self._memo

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, obj: Object | int) -> bool:
        oid = obj.oid if isinstance(obj, Object) else obj
        return oid in self._ids

    def __iter__(self):
        return iter(self._members)

    # ------------------------------------------------------------------
    # Memo plumbing
    # ------------------------------------------------------------------

    def _memo_lookup(self, key):
        """The valid ``undominated?`` verdict for *key*, else None."""
        slot = self._kernel.memo.get(key)
        if slot is None:
            return None
        entry = slot.get(self._uid)
        if entry is None or entry[0] != self._epoch:
            return None
        return entry[1]

    def _memo_record(self, key, undominated: bool) -> None:
        """Record a verdict at the frontier's (post-mutation) epoch."""
        memo = self._kernel.memo
        if len(memo) >= MEMO_LIMIT:
            memo.clear()
        slot = memo.get(key)
        if slot is None:
            slot = memo[key] = {}
        slot[self._uid] = (self._epoch, undominated)

    def _admit(self, obj: Object, codes, key) -> None:
        """Append an accepted object, maintaining keys and epoch."""
        self._members.append(obj)
        self._codes.append(codes)
        if self._columns is not None:
            self._columns.append(codes)
        self._note_insert(key)
        self._note_admitted_oid(obj.oid)
        if self._registry is not None:
            self._registry.insert(self._owner, obj.oid)

    # ------------------------------------------------------------------
    # Algorithm 1: updateParetoFrontier
    # ------------------------------------------------------------------

    def add(self, obj: Object, codes=None) -> AddResult:
        """Offer a new object; maintain the frontier (Algorithm 1).

        Returns whether *obj* is Pareto-optimal and which members it
        evicted.  Identical objects are both kept (Algorithm 1, line 6).
        *codes* is the object's encoded value tuple when the caller
        already encoded it (monitors encode once per ``push``).
        """
        kernel = self._kernel
        if codes is None:
            codes = kernel.encode(obj)
        key = codes if codes is not None else obj.values
        if self._memo:
            verdict = self._memo_lookup(key)
            if verdict is not None:
                if not verdict:
                    # A member dominated this value at the recorded
                    # epoch; nothing changed since, so it still does.
                    return _REJECTED
                if self._keycounts.get(key):
                    # An identical copy is alive on the frontier, so the
                    # newcomer is Pareto and can evict nothing the copy
                    # did not (anything it dominates is already out) —
                    # exactly the scan's identical-member early exit.
                    self._admit(obj, codes, key)
                    return _ADDED
        members = self._members
        member_codes = self._codes
        is_pareto, evicted_reads, scan_end, scanned = kernel.scan_add(
            obj, codes, members, member_codes, self._columns)
        self._counter.bump(scanned)
        if not evicted_reads:
            if is_pareto:
                self._admit(obj, codes, key)
                result = _ADDED
            else:
                result = _REJECTED
        else:
            evicted = tuple(members[read] for read in evicted_reads)
            self._note_removals([self._key_at(read)
                                 for read in evicted_reads])
            drop_sorted(members, member_codes, evicted_reads)
            if self._columns is not None:
                self._columns.delete(evicted_reads)
            self._ids.difference_update(o.oid for o in evicted)
            if self._registry is not None:
                for victim in evicted:
                    self._registry.remove(self._owner, victim.oid)
            if is_pareto:
                self._admit(obj, codes, key)
            result = AddResult(is_pareto, evicted)
        if self._memo:
            self._memo_record(key, result.is_pareto)
        return result

    # ------------------------------------------------------------------
    # Sliding-window support (Section 7)
    # ------------------------------------------------------------------

    def dominated(self, obj: Object, codes=None) -> bool:
        """True iff some member dominates *obj* (full dominance test)."""
        if codes is None:
            codes = self._kernel.encode(obj)
        key = codes if codes is not None else obj.values
        if self._memo:
            verdict = self._memo_lookup(key)
            if verdict is not None:
                return not verdict
        found, scanned = self._kernel.any_dominator(
            obj, codes, self._members, self._codes, self._columns)
        self._counter.bump(scanned)
        return found

    def mend_insert(self, obj: Object, codes=None) -> bool:
        """``mendParetoFrontierSW``: insert *obj* iff no member dominates it.

        Used when an expiring object releases previously dominated objects.
        No eviction scan is needed: a mended object cannot dominate an
        existing member (the member would not have been Pareto-optimal
        while both were alive).
        """
        if obj.oid in self._ids:
            return True
        if codes is None:
            codes = self._kernel.encode(obj)
        if self.dominated(obj, codes):
            return False
        key = codes if codes is not None else obj.values
        self._admit(obj, codes, key)
        if self._memo:
            self._memo_record(key, True)
        return True

    def discard(self, obj: Object | int) -> bool:
        """Remove an object (e.g. on expiry); True if it was a member."""
        oid = obj.oid if isinstance(obj, Object) else obj
        if oid not in self._ids:
            return False
        self._ids.remove(oid)
        self._compact_remove(oid)
        if self._registry is not None:
            self._registry.remove(self._owner, oid)
        return True

    def evict_dominated_by(self, obj: Object, codes=None,
                           ) -> tuple[Object, ...]:
        """Remove every member dominated by *obj*; returns the evicted.

        The ``updateParetoFrontierSW`` step once an incoming object is known
        to be Pareto-optimal.
        """
        members = self._members
        doomed, scanned = self._kernel.dominated_indices(
            obj, codes, members, self._codes, self._columns)
        self._counter.bump(scanned)
        if not doomed:
            return ()
        self._note_removals([self._key_at(i) for i in doomed])
        evicted = tuple(members[i] for i in doomed)
        drop_sorted(members, self._codes, doomed)
        if self._columns is not None:
            self._columns.delete(doomed)
        self._ids.difference_update(o.oid for o in evicted)
        if self._registry is not None:
            for victim in evicted:
                self._registry.remove(self._owner, victim.oid)
        return evicted

    def append_unchecked(self, obj: Object, codes=None) -> None:
        """Append an object already known to be Pareto-optimal."""
        if codes is None:
            codes = self._kernel.encode(obj)
        self._admit(obj, codes, codes if codes is not None else obj.values)

    # ------------------------------------------------------------------
    # Verbatim state transfer (shard rebalancing, DESIGN.md §14)
    # ------------------------------------------------------------------

    def export_state(self) -> tuple:
        """Capture ``(members, codes, verdicts)`` for a verbatim move.

        *verdicts* are this frontier's currently-valid memo entries —
        ``(key, undominated?)`` pairs recorded at the live epoch.  A
        verdict depends only on the kernel's orders and the frontier's
        distinct-value multiset, both of which a verbatim transfer
        preserves, so re-recording them on the adopting frontier
        reproduces the exact memo hit/miss pattern (and therefore the
        exact comparison counts) the serial monitor would produce.
        """
        verdicts = ()
        if self._memo:
            uid, epoch = self._uid, self._epoch
            verdicts = tuple(
                (key, entry[1])
                for key, slot in self._kernel.memo.items()
                if (entry := slot.get(uid)) is not None
                and entry[0] == epoch)
        return list(self._members), list(self._codes), verdicts

    def adopt_state(self, members, codes, verdicts=()) -> None:
        """Install exported state verbatim — no scans, no comparisons.

        The inverse of :meth:`export_state` on a freshly built frontier:
        members and code rows are admitted unchecked (count-neutral, the
        same bookkeeping as :meth:`append_unchecked`), the columnar
        mirror is filled in one bulk extend, and the exported memo
        verdicts are re-recorded at the post-install epoch.
        """
        columns = self._columns
        for obj, row in zip(members, codes):
            self._members.append(obj)
            self._codes.append(row)
            self._note_insert(row if row is not None else obj.values)
            self._note_admitted_oid(obj.oid)
            if self._registry is not None:
                self._registry.insert(self._owner, obj.oid)
        if columns is not None and members:
            columns.extend(codes)
        if self._memo:
            for key, undominated in verdicts:
                self._memo_record(key, undominated)

    def clear(self) -> None:
        if self._registry is not None:
            for oid in self._ids:
                self._registry.remove(self._owner, oid)
        self._members.clear()
        self._codes.clear()
        if self._columns is not None:
            self._columns.clear()
        self._ids.clear()
        self._dup_oids = False
        if self._keycounts:
            self._keycounts.clear()
            self._epoch = next(_STAMPS)
        if self._memo:
            # This frontier stops scanning (clear backs remove_user):
            # purge its slots from the shared kernel memo so dead
            # frontiers cannot accumulate entries across user churn.
            for slot in self._kernel.memo.values():
                slot.pop(self._uid, None)

    def __repr__(self) -> str:
        return f"ParetoFrontier({len(self._members)} members)"
