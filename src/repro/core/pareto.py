"""Incremental Pareto-frontier maintenance for a single preference.

:class:`ParetoFrontier` implements the ``updateParetoFrontier`` procedure of
Algorithm 1 — the classic append-only skyline insert generalised to strict
partial orders — plus the auxiliary operations the sliding-window
algorithms of Section 7 need (membership, discard, mend-insert).

The frontier relies on two standard facts:

* it suffices to compare an incoming object against frontier members only
  (anything dominated by a non-member is transitively dominated by a
  member);
* an incoming object that dominates some member cannot itself be dominated
  or be identical to another member, so a single scan with early exit is
  enough.

The scan itself is delegated to a dominance kernel
(:mod:`repro.core.compiled`): constructed from plain schema-aligned
:class:`PartialOrder` sequences the frontier runs the interpreted
reference path; constructed from a :class:`~repro.core.compiled.
CompiledKernel` the scan works on interned integer codes, kept in a list
parallel to the members.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.core.compiled import as_kernel
from repro.data.objects import Object
from repro.metrics.counters import Counter


class AddResult(NamedTuple):
    """Outcome of offering an object to a frontier."""

    is_pareto: bool
    evicted: tuple[Object, ...]


#: Shared results for the two overwhelmingly common no-eviction
#: outcomes, so the hot insert path allocates nothing extra.
_ADDED = AddResult(True, ())
_REJECTED = AddResult(False, ())


class ParetoFrontier:
    """The Pareto frontier ``P`` of an append-only object sequence.

    Members are kept in arrival order, which the sliding-window mend logic
    depends on (dominators inside a Pareto-frontier buffer always precede
    the objects they dominate — see ``repro.core.sliding``).
    """

    __slots__ = ("_kernel", "_counter", "_members", "_codes", "_ids",
                 "_registry", "_owner")

    def __init__(self, orders, counter: Counter | None = None,
                 registry=None, owner=None):
        self._kernel = as_kernel(orders)
        self._counter = counter if counter is not None else Counter()
        self._members: list[Object] = []
        #: Encoded value tuples parallel to ``_members`` (None entries
        #: under the interpreted kernel).
        self._codes: list = []
        self._ids: set[int] = set()
        # Optional live C_o bookkeeping (repro.core.targets): when set,
        # every membership change is reported as (owner, oid).
        self._registry = registry
        self._owner = owner

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def members(self) -> list[Object]:
        """Current frontier members in arrival order (read-only view)."""
        return self._members

    @property
    def member_codes(self) -> list:
        """Encoded member tuples, parallel to :attr:`members`."""
        return self._codes

    @property
    def kernel(self):
        """The dominance kernel this frontier scans with."""
        return self._kernel

    @property
    def ids(self) -> frozenset[int]:
        """Object ids of the current members."""
        return frozenset(self._ids)

    @property
    def counter(self) -> Counter:
        """The comparison counter charged by this frontier."""
        return self._counter

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, obj: Object | int) -> bool:
        oid = obj.oid if isinstance(obj, Object) else obj
        return oid in self._ids

    def __iter__(self):
        return iter(self._members)

    # ------------------------------------------------------------------
    # Algorithm 1: updateParetoFrontier
    # ------------------------------------------------------------------

    def add(self, obj: Object, codes=None) -> AddResult:
        """Offer a new object; maintain the frontier (Algorithm 1).

        Returns whether *obj* is Pareto-optimal and which members it
        evicted.  Identical objects are both kept (Algorithm 1, line 6).
        *codes* is the object's encoded value tuple when the caller
        already encoded it (monitors encode once per ``push``).
        """
        kernel = self._kernel
        if codes is None:
            codes = kernel.encode(obj)
        members = self._members
        member_codes = self._codes
        is_pareto, evicted_reads, scan_end, scanned = kernel.scan_add(
            obj, codes, members, member_codes)
        self._counter.value += scanned
        if not evicted_reads:
            if is_pareto:
                members.append(obj)
                member_codes.append(codes)
                self._ids.add(obj.oid)
                if self._registry is not None:
                    self._registry.insert(self._owner, obj.oid)
                return _ADDED
            return _REJECTED
        evicted = tuple(members[read] for read in evicted_reads)
        gone = set(evicted_reads)
        # Compact: keep survivors scanned so far plus the unscanned tail.
        members[:] = [m for i, m in enumerate(members[:scan_end])
                      if i not in gone] + members[scan_end:]
        member_codes[:] = [c for i, c in
                           enumerate(member_codes[:scan_end])
                           if i not in gone] + member_codes[scan_end:]
        self._ids.difference_update(o.oid for o in evicted)
        if self._registry is not None:
            for victim in evicted:
                self._registry.remove(self._owner, victim.oid)
        if is_pareto:
            members.append(obj)
            member_codes.append(codes)
            self._ids.add(obj.oid)
            if self._registry is not None:
                self._registry.insert(self._owner, obj.oid)
        return AddResult(is_pareto, evicted)

    # ------------------------------------------------------------------
    # Sliding-window support (Section 7)
    # ------------------------------------------------------------------

    def dominated(self, obj: Object, codes=None) -> bool:
        """True iff some member dominates *obj* (full dominance test)."""
        found, scanned = self._kernel.any_dominator(
            obj, codes, self._members, self._codes)
        self._counter.bump(scanned)
        return found

    def mend_insert(self, obj: Object, codes=None) -> bool:
        """``mendParetoFrontierSW``: insert *obj* iff no member dominates it.

        Used when an expiring object releases previously dominated objects.
        No eviction scan is needed: a mended object cannot dominate an
        existing member (the member would not have been Pareto-optimal
        while both were alive).
        """
        if obj.oid in self._ids:
            return True
        if codes is None:
            codes = self._kernel.encode(obj)
        if self.dominated(obj, codes):
            return False
        self._members.append(obj)
        self._codes.append(codes)
        self._ids.add(obj.oid)
        if self._registry is not None:
            self._registry.insert(self._owner, obj.oid)
        return True

    def discard(self, obj: Object | int) -> bool:
        """Remove an object (e.g. on expiry); True if it was a member."""
        oid = obj.oid if isinstance(obj, Object) else obj
        if oid not in self._ids:
            return False
        self._ids.remove(oid)
        keep = [i for i, m in enumerate(self._members) if m.oid != oid]
        self._members[:] = [self._members[i] for i in keep]
        self._codes[:] = [self._codes[i] for i in keep]
        if self._registry is not None:
            self._registry.remove(self._owner, oid)
        return True

    def evict_dominated_by(self, obj: Object, codes=None,
                           ) -> tuple[Object, ...]:
        """Remove every member dominated by *obj*; returns the evicted.

        The ``updateParetoFrontierSW`` step once an incoming object is known
        to be Pareto-optimal.
        """
        members = self._members
        doomed, scanned = self._kernel.dominated_indices(
            obj, codes, members, self._codes)
        self._counter.bump(scanned)
        if not doomed:
            return ()
        gone = set(doomed)
        evicted = tuple(members[i] for i in doomed)
        members[:] = [m for i, m in enumerate(members) if i not in gone]
        self._codes[:] = [c for i, c in enumerate(self._codes)
                          if i not in gone]
        self._ids.difference_update(o.oid for o in evicted)
        if self._registry is not None:
            for victim in evicted:
                self._registry.remove(self._owner, victim.oid)
        return evicted

    def append_unchecked(self, obj: Object, codes=None) -> None:
        """Append an object already known to be Pareto-optimal."""
        if codes is None:
            codes = self._kernel.encode(obj)
        self._members.append(obj)
        self._codes.append(codes)
        self._ids.add(obj.oid)
        if self._registry is not None:
            self._registry.insert(self._owner, obj.oid)

    def clear(self) -> None:
        if self._registry is not None:
            for oid in self._ids:
                self._registry.remove(self._owner, oid)
        self._members.clear()
        self._codes.clear()
        self._ids.clear()

    def __repr__(self) -> str:
        return f"ParetoFrontier({len(self._members)} members)"
