"""Incremental Pareto-frontier maintenance for a single preference.

:class:`ParetoFrontier` implements the ``updateParetoFrontier`` procedure of
Algorithm 1 — the classic append-only skyline insert generalised to strict
partial orders — plus the auxiliary operations the sliding-window
algorithms of Section 7 need (membership, discard, mend-insert).

The frontier relies on two standard facts:

* it suffices to compare an incoming object against frontier members only
  (anything dominated by a non-member is transitively dominated by a
  member);
* an incoming object that dominates some member cannot itself be dominated
  or be identical to another member, so a single scan with early exit is
  enough.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import NamedTuple

from repro.core.dominance import Comparison, compare
from repro.core.partial_order import PartialOrder
from repro.data.objects import Object
from repro.metrics.counters import Counter


class AddResult(NamedTuple):
    """Outcome of offering an object to a frontier."""

    is_pareto: bool
    evicted: tuple[Object, ...]


class ParetoFrontier:
    """The Pareto frontier ``P`` of an append-only object sequence.

    Members are kept in arrival order, which the sliding-window mend logic
    depends on (dominators inside a Pareto-frontier buffer always precede
    the objects they dominate — see ``repro.core.sliding``).
    """

    __slots__ = ("_orders", "_counter", "_members", "_ids", "_registry",
                 "_owner")

    def __init__(self, orders: Sequence[PartialOrder],
                 counter: Counter | None = None, registry=None,
                 owner=None):
        self._orders = tuple(orders)
        self._counter = counter if counter is not None else Counter()
        self._members: list[Object] = []
        self._ids: set[int] = set()
        # Optional live C_o bookkeeping (repro.core.targets): when set,
        # every membership change is reported as (owner, oid).
        self._registry = registry
        self._owner = owner

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def members(self) -> list[Object]:
        """Current frontier members in arrival order (read-only view)."""
        return self._members

    @property
    def ids(self) -> frozenset[int]:
        """Object ids of the current members."""
        return frozenset(self._ids)

    @property
    def counter(self) -> Counter:
        """The comparison counter charged by this frontier."""
        return self._counter

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, obj: Object | int) -> bool:
        oid = obj.oid if isinstance(obj, Object) else obj
        return oid in self._ids

    def __iter__(self):
        return iter(self._members)

    # ------------------------------------------------------------------
    # Algorithm 1: updateParetoFrontier
    # ------------------------------------------------------------------

    def add(self, obj: Object) -> AddResult:
        """Offer a new object; maintain the frontier (Algorithm 1).

        Returns whether *obj* is Pareto-optimal and which members it
        evicted.  Identical objects are both kept (Algorithm 1, line 6).
        """
        members = self._members
        evicted: list[Object] = []
        is_pareto = True
        scan_end = len(members)
        write = 0
        bump = self._counter.bump
        orders = self._orders
        for read in range(len(members)):
            member = members[read]
            bump()
            verdict = compare(orders, obj, member)
            if verdict is Comparison.A_DOMINATES:
                evicted.append(member)
                continue
            if verdict is Comparison.B_DOMINATES:
                is_pareto = False
                scan_end = read
                break
            if verdict is Comparison.IDENTICAL:
                scan_end = read
                break
            members[write] = member
            write += 1
        if evicted:
            # Compact: keep survivors scanned so far plus the unscanned tail.
            members[write:] = members[scan_end:]
            self._ids.difference_update(o.oid for o in evicted)
            if self._registry is not None:
                for gone in evicted:
                    self._registry.remove(self._owner, gone.oid)
        if is_pareto:
            members.append(obj)
            self._ids.add(obj.oid)
            if self._registry is not None:
                self._registry.insert(self._owner, obj.oid)
        return AddResult(is_pareto, tuple(evicted))

    # ------------------------------------------------------------------
    # Sliding-window support (Section 7)
    # ------------------------------------------------------------------

    def dominated(self, obj: Object) -> bool:
        """True iff some member dominates *obj* (full dominance test)."""
        bump = self._counter.bump
        orders = self._orders
        for member in self._members:
            bump()
            if (compare(orders, member, obj)
                    is Comparison.A_DOMINATES):
                return True
        return False

    def mend_insert(self, obj: Object) -> bool:
        """``mendParetoFrontierSW``: insert *obj* iff no member dominates it.

        Used when an expiring object releases previously dominated objects.
        No eviction scan is needed: a mended object cannot dominate an
        existing member (the member would not have been Pareto-optimal
        while both were alive).
        """
        if obj.oid in self._ids:
            return True
        if self.dominated(obj):
            return False
        self._members.append(obj)
        self._ids.add(obj.oid)
        if self._registry is not None:
            self._registry.insert(self._owner, obj.oid)
        return True

    def discard(self, obj: Object | int) -> bool:
        """Remove an object (e.g. on expiry); True if it was a member."""
        oid = obj.oid if isinstance(obj, Object) else obj
        if oid not in self._ids:
            return False
        self._ids.remove(oid)
        self._members[:] = [m for m in self._members if m.oid != oid]
        if self._registry is not None:
            self._registry.remove(self._owner, oid)
        return True

    def evict_dominated_by(self, obj: Object) -> tuple[Object, ...]:
        """Remove every member dominated by *obj*; returns the evicted.

        The ``updateParetoFrontierSW`` step once an incoming object is known
        to be Pareto-optimal.
        """
        bump = self._counter.bump
        orders = self._orders
        evicted = []
        survivors = []
        for member in self._members:
            bump()
            if compare(orders, obj, member) is Comparison.A_DOMINATES:
                evicted.append(member)
            else:
                survivors.append(member)
        if evicted:
            self._members[:] = survivors
            self._ids.difference_update(o.oid for o in evicted)
            if self._registry is not None:
                for gone in evicted:
                    self._registry.remove(self._owner, gone.oid)
        return tuple(evicted)

    def append_unchecked(self, obj: Object) -> None:
        """Append an object already known to be Pareto-optimal."""
        self._members.append(obj)
        self._ids.add(obj.oid)
        if self._registry is not None:
            self._registry.insert(self._owner, obj.oid)

    def clear(self) -> None:
        if self._registry is not None:
            for oid in self._ids:
                self._registry.remove(self._owner, oid)
        self._members.clear()
        self._ids.clear()

    def __repr__(self) -> str:
        return f"ParetoFrontier({len(self._members)} members)"
