"""Compiled dominance kernel: value interning + bitset dominance matrices.

The interpreted hot path (:func:`repro.core.dominance.compare`) classifies
an object pair by calling ``PartialOrder.prefers`` per attribute — each
call a method dispatch, a dict probe and a frozenset membership test on
opaque hashable values.  For a monitor serving many users that cost is
paid per user per frontier member per arrival, and the interpreter
overhead dwarfs the actual decision being made.

This module compiles the same decision down to integer indexing:

* :class:`DomainCodec` interns each attribute's values to contiguous
  small ints, once, so an arriving object is encoded to a
  ``tuple[int, ...]`` a single time at ``push()`` instead of being
  re-hashed per user per frontier member.
* :class:`CompiledOrder` compiles one :class:`PartialOrder` into arrays
  of int bitmasks (``better[code]`` / ``worse[code]`` = bitset of the
  codes it beats / loses to) and a flat *outcome table*
  ``table[x * m + y]`` holding the two-bit pair verdict (0 equal, 1
  ``x ≻ y``, 2 ``y ≻ x``, 3 incomparable).  Tables are padded past the
  codec's current size and recompiled when the codec outgrows them, so
  values first seen mid-stream stay on the fast path.  Attributes whose
  capacity exceeds :data:`TABLE_DOMAIN_LIMIT` skip the O(m²) byte table
  and are scanned straight off the bitmask rows, with equality split out
  of the generated expression — huge domains never fall back to the
  generic per-pair path.
* :class:`OrderRegistry` dedupes compiled orders *across users*: kernels
  are keyed by their schema-aligned order tuples and compiled orders by
  (attribute index, preference pairs), so hundreds of users holding
  equal orders share one :class:`CompiledOrder` — one outcome table, one
  set of bitmask rows, one growth-recompile — instead of each paying
  O(m²) bytes per attribute.  Every monitor owns one registry next to
  its codec.
* :class:`CompiledKernel` fuses a whole preference (one compiled order
  per schema attribute) and exposes the frontier scan loops the data
  structures in :mod:`repro.core.pareto` / :mod:`repro.core.sliding`
  need.  The scans are *specialised by schema width and table
  availability*: a tiny code generator emits, once per shape, a scan
  function whose inner loop is a straight OR-chain of ``d`` byte-table
  lookups (or bitmask probes for huge domains) at the arriving object's
  precomputed row offsets — no per-pair function call, no per-attribute
  loop, no hashing.

Unknown values fall back transparently: a value interned after an order
was compiled participates in no preference pair, so the padded tables
classify it as equal to itself and incomparable to everything else —
exactly what :meth:`PartialOrder.prefers` would conclude.

:class:`InterpretedKernel` wraps the original pure-Python path behind the
same interface, and :mod:`repro.core.vector` layers a columnar numpy
flavour on top of the compiled code space; every monitor accepts
``kernel="compiled"`` (default), ``kernel="vector"`` or
``kernel="interpreted"`` — see :data:`KERNELS` — and the flavours are
differentially tested to return identical notification sets, frontiers
and buffers (compiled and interpreted additionally charge identical
comparison counts; the vector kernel charges a documented
vector-equivalent, DESIGN.md §13).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from contextlib import contextmanager
from functools import lru_cache

from repro.core.dominance import Comparison, compare
from repro.core.errors import ReproError, SchemaMismatchError
from repro.core.partial_order import PartialOrder
from repro.data.objects import Object, Schema, Value

#: Selectable kernel implementations, in preference order.  Every
#: user-facing kernel enumeration (CLI choices, policy validation,
#: docstrings rendered at runtime) derives from this tuple so a new
#: kernel cannot drift out of any surface.  ``"vector"`` is the columnar
#: numpy flavour of :mod:`repro.core.vector`; it shares the compiled
#: kernel's code space and returns byte-identical results with
#: vector-equivalent comparison accounting (DESIGN.md §13).
KERNELS = ("compiled", "vector", "interpreted")

#: Above this many interned values per attribute the O(m²) outcome table
#: is not built and the generated scans probe the bitmask rows directly
#: (equality handled by an explicit code comparison).
TABLE_DOMAIN_LIMIT = 2048

#: Two-bit pair verdicts → the public four-way classification.
_ACC_TO_COMPARISON = (Comparison.IDENTICAL, Comparison.A_DOMINATES,
                      Comparison.B_DOMINATES, Comparison.INCOMPARABLE)

_EQ, _A_WINS, _B_WINS, _INCOMPARABLE = 0, 1, 2, 3


def validate_kernel(kernel: str) -> str:
    """Check a kernel name, returning it; raises on unknown names."""
    if kernel not in KERNELS:
        raise ReproError(
            f"unknown kernel {kernel!r}; choose from {', '.join(KERNELS)}")
    return kernel


def kernel_class(kernel: str):
    """The implementation class behind a kernel name.

    ``"vector"`` is imported lazily so the base kernels never require
    numpy; a missing numpy surfaces as a :class:`ReproError` naming the
    declared requirement rather than an ImportError from deep inside
    monitor construction.
    """
    name = validate_kernel(kernel)
    if name == "interpreted":
        return InterpretedKernel
    if name == "vector":
        try:
            from repro.core.vector import VectorKernel
        except ImportError as error:
            raise ReproError(
                'kernel="vector" needs numpy>=1.26 (declared in '
                "install_requires); install it or choose another kernel "
                f"from {', '.join(KERNELS)}") from error
        return VectorKernel
    return CompiledKernel


#: Stack of codec sources installed by :func:`codec_source`; consulted
#: by :meth:`DomainCodec.for_monitor` so a shard build can adopt the
#: façade's master codec (or a replica replayed from its journal)
#: instead of interning independently.
_CODEC_SOURCE: list = []


@contextmanager
def codec_source(source):
    """Install a codec source for monitors built inside the scope.

    *source* is either a :class:`DomainCodec` instance — adopted as-is,
    the in-process sharing used by the serial/threads executors — or an
    interning journal (``codec.journal``), replayed into a fresh replica
    whose tables, codes and version exactly equal the master's at the
    time the journal was captured (the seed a ``processes`` shard worker
    builds from).  Monitor construction is sequential, so a plain stack
    suffices; the seam is consulted only by
    :meth:`DomainCodec.for_monitor`.
    """
    _CODEC_SOURCE.append(source)
    try:
        yield
    finally:
        _CODEC_SOURCE.pop()


class DomainCodec:
    """Per-attribute interning of domain values to contiguous small ints.

    One codec is shared by a whole monitor: every user's compiled order
    and every encoded object of that monitor speak the same code space,
    so encoding happens once per arrival regardless of user count.
    Unknown values are interned on first sight (:meth:`encode` never
    fails); codes are stable for the codec's lifetime.

    Every interning is appended to a **journal** of ``(attribute index,
    value)`` entries, so ``version == len(journal)`` always holds and a
    replica codec can be kept in lockstep with a master by replaying
    :meth:`delta_since` through :meth:`apply_delta` — codes are assigned
    by table length, so identical journals imply identical code spaces.
    This is the wire plane's replication protocol (DESIGN.md §14): only
    newly seen values ever travel, and replicas never intern
    independently.
    """

    __slots__ = ("schema", "version", "_tables", "_journal", "_values")

    def __init__(self, schema: Sequence[str]):
        self.schema: Schema = tuple(schema)
        #: Bumped whenever any value is interned; kernels compare it to
        #: skip per-scan staleness checks when nothing changed.
        self.version = 0
        self._tables: tuple[dict[Value, int], ...] = tuple(
            {} for _ in self.schema)
        #: One (attribute index, value) entry per interning, in order.
        self._journal: list[tuple[int, Value]] = []
        #: Reverse tables: ``_values[index][code]`` is the interned
        #: value — the decode side of the wire frames.
        self._values: tuple[list[Value], ...] = tuple(
            [] for _ in self.schema)

    @classmethod
    def for_preferences(cls, schema: Sequence[str], preferences: Iterable,
                        ) -> "DomainCodec":
        """A codec pre-seeded with every order domain of *preferences*."""
        codec = cls(schema)
        for preference in preferences:
            codec.intern_preference(preference)
        return codec

    @classmethod
    def for_monitor(cls, schema: Sequence[str]) -> "DomainCodec":
        """The codec a new monitor should own.

        Outside a :func:`codec_source` scope this is a fresh empty
        codec (the historical behaviour).  Inside one, the installed
        master codec is shared directly, or — when the source is a
        journal — a replica is replayed from it, so shard monitors
        always speak the façade's code space.
        """
        if _CODEC_SOURCE:
            source = _CODEC_SOURCE[-1]
            if isinstance(source, cls):
                if source.schema != tuple(schema):
                    raise ReproError(
                        f"codec source schema {source.schema!r} does not "
                        f"match monitor schema {tuple(schema)!r}")
                return source
            replica = cls(schema)
            replica.apply_delta(source)
            return replica
        return cls(schema)

    def intern_preference(self, preference) -> None:
        """Intern the domains of a preference's schema-aligned orders."""
        for index, order in enumerate(preference.aligned(self.schema)):
            self.intern_domain(index, order.domain)

    def intern_domain(self, index: int, values: Iterable[Value]) -> None:
        """Intern *values* for attribute *index* (sorted for stability).

        Only unseen values pay the stability sort, so re-interning an
        already-known domain — every registry cache hit does this — is
        a membership sweep, not an O(m log m) sort.
        """
        table = self._tables[index]
        missing = [value for value in values if value not in table]
        for value in sorted(missing, key=repr):
            if value not in table:
                self._intern(index, table, value)

    def _intern(self, index: int, table: dict, value: Value) -> int:
        """Assign the next code for *value*, journalling the interning."""
        code = len(table)
        table[value] = code
        self._values[index].append(value)
        self._journal.append((index, value))
        self.version += 1
        return code

    @property
    def journal(self) -> tuple[tuple[int, Value], ...]:
        """The full interning journal — the seed for a fresh replica."""
        return tuple(self._journal)

    def delta_since(self, version: int) -> tuple[tuple[int, Value], ...]:
        """The journal suffix a replica at *version* is missing."""
        return tuple(self._journal[version:])

    def apply_delta(self, entries: Iterable[tuple[int, Value]]) -> int:
        """Replay journal *entries* from a master codec, in order.

        Entries already present are skipped (the in-process executors
        share the master instance, so their "replicas" are always ahead
        of any delta), which makes replay idempotent; genuinely new
        entries are interned exactly as the master interned them, so the
        resulting tables, reverse tables and version match the master's
        byte for byte.  Returns the number of entries applied.
        """
        applied = 0
        for index, value in entries:
            table = self._tables[index]
            if value not in table:
                self._intern(index, table, value)
                applied += 1
        return applied

    def size(self, index: int) -> int:
        """Number of codes currently interned for attribute *index*."""
        return len(self._tables[index])

    def code(self, index: int, value: Value) -> int | None:
        """The code of *value* on attribute *index*, if already interned."""
        return self._tables[index].get(value)

    def value(self, index: int, code: int) -> Value:
        """The value behind *code* on attribute *index* (decode side)."""
        return self._values[index][code]

    def decode(self, codes: Sequence[int]) -> tuple[Value, ...]:
        """Rebuild the schema-aligned value tuple behind a code row."""
        return tuple(values[code]
                     for values, code in zip(self._values, codes))

    def encode(self, values: Sequence[Value]) -> tuple[int, ...]:
        """Encode one schema-aligned value tuple, interning new values."""
        codes = []
        for index, (table, value) in enumerate(zip(self._tables, values)):
            code = table.get(value)
            if code is None:
                code = self._intern(index, table, value)
            codes.append(code)
        return tuple(codes)

    def encode_many(self, rows: Iterable[Sequence[Value]],
                    ) -> list[tuple[int, ...]]:
        """Encode a batch of value tuples (the ``push_batch`` fast path).

        Raises :class:`~repro.core.errors.SchemaMismatchError` for rows
        whose width disagrees with the schema — a silent ``zip``
        truncation here would corrupt every downstream dominance verdict
        for the arrival.
        """
        encode = self.encode
        width = len(self.schema)
        encoded = []
        for index, row in enumerate(rows):
            if len(row) != width:
                raise SchemaMismatchError(
                    self.schema, row,
                    message=f"batch row {index} has {len(row)} values "
                            f"{tuple(row)!r} for the {width}-attribute "
                            f"schema {self.schema!r}")
            encoded.append(encode(row))
        return encoded

    def __repr__(self) -> str:
        sizes = ", ".join(f"{attr}:{len(table)}" for attr, table
                          in zip(self.schema, self._tables))
        return f"DomainCodec({sizes})"


class CompiledOrder:
    """One :class:`PartialOrder` compiled against a codec's code space.

    ``better[code]`` is an int bitmask with bit ``w`` set iff the value
    of ``code`` is preferred to the value of ``w`` — the dominance
    bit-matrix row — and ``worse[code]`` its transpose row.  ``table``
    is the flat outcome table over ``size`` (≥ the codec's size at
    compile time, padded so mid-stream interning rarely forces a
    recompile); past :data:`TABLE_DOMAIN_LIMIT` it is ``None`` and the
    generated scans probe the bitmask rows instead.

    Instances are shared between kernels by :class:`OrderRegistry`:
    the compiled form depends only on (codec, attribute index,
    preference pairs), never on which user holds the order.
    """

    __slots__ = ("order", "codec", "index", "size", "better", "worse",
                 "table")

    def __init__(self, order: PartialOrder, codec: DomainCodec, index: int):
        codec.intern_domain(index, order.domain)
        self.order = order
        self.codec = codec
        self.index = index
        self.recompile()

    def recompile(self) -> None:
        """(Re)build the bitmasks and outcome table for the codec's
        current code space, with headroom for future interning."""
        codec = self.codec
        index = self.index
        n = codec.size(index)
        # Padding: new values interned later keep working (equal to
        # themselves, incomparable to everything) until the codec
        # outgrows the padded capacity, amortising recompiles.
        m = max(16, 2 * n)
        better = [0] * m
        worse = [0] * m
        code = codec.code
        for winner, loser in self.order.pairs:
            w, l = code(index, winner), code(index, loser)
            better[w] |= 1 << l
            worse[l] |= 1 << w
        self.size = m
        self.better = better
        self.worse = worse
        self.table = self._build_table(m, better) \
            if m <= TABLE_DOMAIN_LIMIT else None

    @staticmethod
    def _build_table(m: int, better: list[int]) -> bytes:
        table = bytearray([_INCOMPARABLE]) * (m * m)
        for x in range(m):
            table[x * m + x] = _EQ
            mask = better[x]
            while mask:
                low = mask & -mask
                y = low.bit_length() - 1
                table[x * m + y] = _A_WINS
                table[y * m + x] = _B_WINS
                mask ^= low
        return bytes(table)

    def prefers(self, x: int, y: int) -> bool:
        """``x ≻ y`` on codes; False for codes outside the compiled
        capacity (they postdate this compilation, so are in no pair)."""
        return x < self.size and (self.better[x] >> y) & 1 == 1

    def outcome(self, x: int, y: int) -> int:
        """The two-bit pair verdict for a code pair (handles any codes)."""
        if x == y:
            return _EQ
        if x >= self.size or y >= self.size:
            return _INCOMPARABLE
        if self.table is not None:
            return self.table[x * self.size + y]
        if (self.better[x] >> y) & 1:
            return _A_WINS
        if (self.better[y] >> x) & 1:
            return _B_WINS
        return _INCOMPARABLE


class OrderRegistry:
    """Monitor-wide dedup of compiled orders and kernels.

    The paper's whole premise is that users share preference structure;
    the registry makes the kernel exploit it.  Compiled orders are keyed
    by (attribute index, preference pairs) — :class:`PartialOrder`
    equality — and whole kernels by their schema-aligned order tuple, so
    any number of users or clusters holding equal orders share one
    :class:`CompiledOrder` (its outcome table, bitmask rows and
    growth-recompiles) and one :class:`CompiledKernel`.  Amortised
    per-user compiled-state cost for duplicated orders drops from
    O(attributes · m²) bytes to O(1).

    Sharing is safe because compiled orders and kernels are stateless
    with respect to the containers that scan through them: frontier
    members and their codes are always passed in by the caller.

    Acquisitions are refcounted: every :meth:`kernel` call takes one
    reference, and :meth:`release` returns one.  When a kernel's last
    holder releases it — user churn through
    :meth:`~repro.core.baseline.Baseline.remove_user` and the
    :class:`~repro.service.MonitorService` lifecycle ops — the kernel,
    its verdict memo and any compiled orders no other live kernel uses
    are dropped, so a long-lived service does not accumulate compiled
    state for departed tastes.
    """

    __slots__ = ("codec", "_orders", "_kernels", "orders_requested",
                 "kernels_requested", "_kernel_refs", "_order_refs",
                 "_kernel_cls")

    def __init__(self, codec: DomainCodec, kernel_cls: type | None = None):
        self.codec = codec
        #: Kernel flavour this registry hands out — CompiledKernel or a
        #: subclass (the vector kernel).  One registry serves one
        #: monitor, and a monitor runs a single kernel flavour, so the
        #: class is fixed at construction.
        self._kernel_cls = CompiledKernel if kernel_cls is None \
            else kernel_cls
        self._orders: dict[tuple, CompiledOrder] = {}
        self._kernels: dict[tuple, "CompiledKernel"] = {}
        #: Demand counters: requested − unique = orders/kernels deduped.
        self.orders_requested = 0
        self.kernels_requested = 0
        #: Live references: kernels per order tuple (one per acquisition)
        #: and compiled orders per (index, order) (one per live kernel).
        self._kernel_refs: dict[tuple, int] = {}
        self._order_refs: dict[tuple, int] = {}

    def compiled_order(self, order: PartialOrder, index: int,
                       ) -> CompiledOrder:
        """The shared :class:`CompiledOrder` for *order* on attribute
        *index*, compiling it on first sight."""
        self.orders_requested += 1
        key = (index, order)
        existing = self._orders.get(key)
        if existing is None:
            existing = CompiledOrder(order, self.codec, index)
            self._orders[key] = existing
        else:
            # Orders equal by pairs may still carry different isolated
            # domain values; intern them so encoding stays stable.
            self.codec.intern_domain(index, order.domain)
        self._order_refs[key] = self._order_refs.get(key, 0) + 1
        return existing

    def kernel(self, orders: Sequence[PartialOrder]) -> "CompiledKernel":
        """The shared :class:`CompiledKernel` for an order tuple.

        Takes one reference; pair every call with a :meth:`release`
        when the holding frontier is torn down.
        """
        self.kernels_requested += 1
        key = tuple(orders)
        existing = self._kernels.get(key)
        if existing is None:
            existing = self._kernel_cls(orders, self.codec, registry=self)
            self._kernels[key] = existing
        else:
            for index, order in enumerate(orders):
                self.codec.intern_domain(index, order.domain)
        self._kernel_refs[key] = self._kernel_refs.get(key, 0) + 1
        return existing

    def release(self, kernel: "CompiledKernel") -> bool:
        """Return one acquisition of *kernel*; True if it was dropped.

        The last release removes the kernel (and its cross-batch memo)
        from the registry and unpins its compiled orders, dropping any
        order no remaining kernel shares.  Releasing a kernel the
        registry does not hold is a no-op (interpreted kernels and
        over-releases are tolerated, not fatal).
        """
        key = kernel.orders
        left = self._kernel_refs.get(key)
        if left is None:
            return False
        if left > 1:
            self._kernel_refs[key] = left - 1
            return False
        del self._kernel_refs[key]
        del self._kernels[key]
        for index, order in enumerate(key):
            order_key = (index, order)
            remaining = self._order_refs.get(order_key, 1) - 1
            if remaining > 0:
                self._order_refs[order_key] = remaining
            else:
                self._order_refs.pop(order_key, None)
                self._orders.pop(order_key, None)
        return True

    @property
    def unique_orders(self) -> int:
        return len(self._orders)

    @property
    def unique_kernels(self) -> int:
        return len(self._kernels)

    def __repr__(self) -> str:
        return (f"OrderRegistry({self.unique_kernels} kernels for "
                f"{self.kernels_requested} requests, {self.unique_orders} "
                f"orders for {self.orders_requested})")


# ---------------------------------------------------------------------------
# Scan specialisation: one generated module per scan shape
# ---------------------------------------------------------------------------
#
# The inner decision for a pair is `acc = t0[o0+b0] | t1[o1+b1] | ...`
# where `ti` is attribute i's flat outcome table, `oi` the arriving
# object's precomputed row offset (`code_i * capacity_i`) and `bi` the
# member's code.  acc is the OR of two-bit pair verdicts: 0 identical,
# 1 the newcomer wins, 2 the member wins, 3 incomparable (any mix of
# wins is 3 = incomparable, matching Definition 3.2).  Attributes whose
# capacity outgrew TABLE_DOMAIN_LIMIT carry no byte table; their term
# splits equality out as an explicit code comparison and reads the two
# dominance bits straight off the arriving object's bitmask rows
# (`g`/`l`, hoisted once per scan), so huge domains cost two shifts per
# pair instead of an O(m²) table.  Generating the function per
# (width, table-availability) shape unrolls the attribute loop and
# keeps the scan free of per-pair Python calls.

_SCANNER_TEMPLATE = """\
def scan_add(codes, member_codes, tables, capacities, betters, worses):
    {setup}
    evicted = []
    scan_end = len(member_codes)
    is_pareto = True
    scanned = 0
    for mcodes in member_codes:
        scanned += 1
        {unpack_codes}
        acc = {acc}
        if acc == 3:
            continue
        if acc == 1:
            evicted.append(scanned - 1)
        elif acc == 2:
            is_pareto = False
            scan_end = scanned - 1
            break
        else:
            scan_end = scanned - 1
            break
    return is_pareto, evicted, scan_end, scanned


def any_dominator(codes, member_codes, tables, capacities, betters, worses):
    {setup}
    scanned = 0
    for mcodes in member_codes:
        scanned += 1
        {unpack_codes}
        if {acc} == 2:
            return True, scanned
    return False, scanned


def dominated_indices(codes, member_codes, tables, capacities,
                      betters, worses):
    {setup}
    indices = []
    read = 0
    for mcodes in member_codes:
        {unpack_codes}
        if {acc} == 1:
            indices.append(read)
        read += 1
    return indices, read
"""


@lru_cache(maxsize=128)
def _scanners(width: int, has_table: tuple[bool, ...]):
    """The generated (scan_add, any_dominator, dominated_indices) trio
    for one scan shape: schema width × which attributes carry a byte
    table (the rest are probed through their bitmask rows)."""
    if width == 0:
        # No attributes: every pair is identical (acc == 0).
        setup = "pass"
        unpack_codes = "pass"
        acc = "0"
    else:
        names = list(range(width))
        trail = "," if width == 1 else ""
        lines = [", ".join(f"a{i}" for i in names) + trail + " = codes"]
        terms = []
        for i in names:
            if has_table[i]:
                lines.append(f"t{i} = tables[{i}]")
                lines.append(f"o{i} = a{i} * capacities[{i}]")
                terms.append(f"t{i}[o{i} + b{i}]")
            else:
                # Equality split out; the two dominance bits come from
                # the arriving object's (better, worse) rows, hoisted
                # here once per scan.
                lines.append(f"g{i} = betters[{i}][a{i}]")
                lines.append(f"l{i} = worses[{i}][a{i}]")
                terms.append(
                    f"(0 if b{i} == a{i} else "
                    f"3 ^ (((g{i} >> b{i}) & 1) << 1) ^ "
                    f"((l{i} >> b{i}) & 1))")
        setup = "; ".join(lines)
        unpack_codes = ", ".join(f"b{i}" for i in names) + trail \
            + " = mcodes"
        acc = " | ".join(terms)
    source = _SCANNER_TEMPLATE.format(
        setup=setup, unpack_codes=unpack_codes, acc=acc)
    namespace: dict = {}
    exec(compile(source,
                 f"<repro.compiled scanners d={width} "
                 f"tables={''.join('ty'[f] for f in has_table)}>", "exec"),
         namespace)
    return (namespace["scan_add"], namespace["any_dominator"],
            namespace["dominated_indices"])


class CompiledKernel:
    """A whole preference compiled for one schema: the dominance kernel.

    Exposes both single-pair classification (:meth:`compare_codes`,
    identical semantics to :func:`repro.core.dominance.compare`) and the
    fused frontier scan loops (:meth:`scan_add`, :meth:`any_dominator`,
    :meth:`dominated_indices`) that let the hot data structures make one
    Python call per scan instead of one per pair.
    """

    __slots__ = ("codec", "orders", "compiled", "memo", "_version",
                 "_tables", "_capacities", "_betters", "_worses", "_flags",
                 "_scan_add_fn", "_any_dominator_fn",
                 "_dominated_indices_fn")

    #: Whether containers should keep a columnar mirror of their member
    #: codes for this kernel (True only for the vector subclass).
    columnar = False

    def new_columns(self):
        """Columnar member mirror for containers; None for kernels that
        scan the plain code tuples."""
        return None

    def __init__(self, orders: Sequence[PartialOrder], codec: DomainCodec,
                 registry: OrderRegistry | None = None):
        self.codec = codec
        self.orders = tuple(orders)
        #: Cross-batch verdict memo (see ``repro.core.pareto``): value
        #: key → {frontier uid → (epoch, undominated?)}.  Shared by
        #: every frontier scanning through this kernel — registry-deduped
        #: kernels make it monitor-wide per order tuple — and validated
        #: per frontier against globally unique mutation epochs.
        self.memo: dict = {}
        if len(self.orders) != len(codec.schema):
            raise ReproError(
                f"{len(self.orders)} orders for a "
                f"{len(codec.schema)}-attribute schema")
        if registry is not None:
            self.compiled = tuple(
                registry.compiled_order(order, index)
                for index, order in enumerate(self.orders))
        else:
            self.compiled = tuple(
                CompiledOrder(order, codec, index)
                for index, order in enumerate(self.orders))
        self._flags = None
        self._refresh()

    def _refresh(self) -> None:
        """Recompile orders the codec outgrew; recache the flat tables.

        Cheap to call when current: the codec's version counter gates it
        (:attr:`DomainCodec.version`), so steady-state scans pay one int
        comparison, not a per-attribute staleness probe.  Shared compiled
        orders are recompiled by whichever kernel notices first; the
        others merely recache.
        """
        codec = self.codec
        for compiled in self.compiled:
            if codec.size(compiled.index) > compiled.size:
                compiled.recompile()
        self._tables = tuple(c.table for c in self.compiled)
        self._capacities = tuple(c.size for c in self.compiled)
        self._betters = tuple(c.better for c in self.compiled)
        self._worses = tuple(c.worse for c in self.compiled)
        flags = tuple(t is not None for t in self._tables)
        if flags != self._flags:
            self._flags = flags
            (self._scan_add_fn, self._any_dominator_fn,
             self._dominated_indices_fn) = _scanners(len(self.orders),
                                                     flags)
        self._version = codec.version

    # -- encoding --------------------------------------------------------

    def encode(self, obj: Object) -> tuple[int, ...]:
        """Encode one object's values (interning unseen values)."""
        return self.codec.encode(obj.values)

    # -- single-pair classification -------------------------------------

    def compare_codes(self, a: tuple[int, ...], b: tuple[int, ...],
                      ) -> Comparison:
        """Four-way classification of two encoded objects."""
        if a == b:
            return Comparison.IDENTICAL
        acc = 0
        for compiled, av, bv in zip(self.compiled, a, b):
            acc |= compiled.outcome(av, bv)
            if acc == _INCOMPARABLE:
                return Comparison.INCOMPARABLE
        return _ACC_TO_COMPARISON[acc]

    def compare(self, a: Object, b: Object, a_codes=None, b_codes=None,
                ) -> Comparison:
        """Classify a pair, encoding on demand (for callers off the
        hot path)."""
        if a_codes is None:
            a_codes = self.codec.encode(a.values)
        if b_codes is None:
            b_codes = self.codec.encode(b.values)
        return self.compare_codes(a_codes, b_codes)

    # -- fused scan loops ------------------------------------------------
    #
    # Each takes the scanned container's parallel (members, member_codes)
    # lists and returns how many pairs were classified, so callers charge
    # their Counter in one bump and counts stay identical to the
    # interpreted path.

    def scan_add(self, obj: Object, codes, members, member_codes,
                 columns=None):
        """Algorithm 1's insert scan: returns
        ``(is_pareto, evicted_reads, scan_end, scanned)``.

        ``evicted_reads`` are indices of members dominated by *obj*;
        ``scan_end`` is where the scan stopped (exclusive), so survivors
        are the non-evicted prefix plus the unscanned tail.  *columns*
        is the container's columnar mirror — unused here, consumed by
        the vector subclass.
        """
        if codes is None:
            codes = self.codec.encode(obj.values)
        if self._version != self.codec.version:
            self._refresh()
        return self._scan_add_fn(codes, member_codes, self._tables,
                                 self._capacities, self._betters,
                                 self._worses)

    def any_dominator(self, obj: Object, codes, members, member_codes,
                      columns=None):
        """``(dominated?, scanned)``: does any member dominate *obj*?"""
        if codes is None:
            codes = self.codec.encode(obj.values)
        if self._version != self.codec.version:
            self._refresh()
        return self._any_dominator_fn(codes, member_codes, self._tables,
                                      self._capacities, self._betters,
                                      self._worses)

    def dominated_indices(self, obj: Object, codes, members, member_codes,
                          columns=None, start: int = 0):
        """``(indices, scanned)``: members past *start* that *obj*
        dominates, as offsets relative to *start*."""
        if codes is None:
            codes = self.codec.encode(obj.values)
        if self._version != self.codec.version:
            self._refresh()
        return self._dominated_indices_fn(
            codes, member_codes[start:] if start else member_codes,
            self._tables, self._capacities, self._betters, self._worses)

    def __repr__(self) -> str:
        domains = tuple(self.codec.size(i)
                        for i in range(len(self.orders)))
        return (f"CompiledKernel({len(self.orders)} attributes, "
                f"domains {domains})")


class InterpretedKernel:
    """The original pure-Python dominance path behind the kernel API.

    Kept as the selectable reference implementation: monitors built with
    ``kernel="interpreted"`` run exactly the seed code path, which the
    differential tests pit against :class:`CompiledKernel`.
    """

    __slots__ = ("orders", "memo")

    codec = None
    columnar = False

    def new_columns(self):
        return None

    def __init__(self, orders: Sequence[PartialOrder]):
        self.orders = tuple(orders)
        #: Cross-batch verdict memo, keyed by raw value tuples (the
        #: interpreted twin of :attr:`CompiledKernel.memo`; the codec is
        #: injective, so both key spaces memoise identically and the two
        #: kernels keep charging identical comparison counts).
        self.memo: dict = {}

    def encode(self, obj: Object):
        return None

    def compare(self, a: Object, b: Object, a_codes=None, b_codes=None,
                ) -> Comparison:
        return compare(self.orders, a, b)

    def scan_add(self, obj: Object, codes, members, member_codes,
                 columns=None):
        orders = self.orders
        evicted: list[int] = []
        scan_end = len(members)
        is_pareto = True
        scanned = 0
        for read, member in enumerate(members):
            scanned += 1
            verdict = compare(orders, obj, member)
            if verdict is Comparison.A_DOMINATES:
                evicted.append(read)
            elif verdict is Comparison.B_DOMINATES:
                is_pareto = False
                scan_end = read
                break
            elif verdict is Comparison.IDENTICAL:
                scan_end = read
                break
        return is_pareto, evicted, scan_end, scanned

    def any_dominator(self, obj: Object, codes, members, member_codes,
                      columns=None):
        orders = self.orders
        scanned = 0
        for member in members:
            scanned += 1
            if compare(orders, member, obj) is Comparison.A_DOMINATES:
                return True, scanned
        return False, scanned

    def dominated_indices(self, obj: Object, codes, members, member_codes,
                          columns=None, start: int = 0):
        orders = self.orders
        if start:
            members = members[start:]
        indices = [read for read, member in enumerate(members)
                   if compare(orders, obj, member)
                   is Comparison.A_DOMINATES]
        return indices, len(members)

    def __repr__(self) -> str:
        return f"InterpretedKernel({len(self.orders)} attributes)"


def as_kernel(orders_or_kernel):
    """Coerce a constructor argument to a kernel.

    Data structures historically took a sequence of schema-aligned
    :class:`PartialOrder` — that still works and selects the interpreted
    path; passing a ready kernel selects whatever it implements.
    """
    if isinstance(orders_or_kernel, (CompiledKernel, InterpretedKernel)):
        return orders_or_kernel
    return InterpretedKernel(orders_or_kernel)


def make_kernel(kernel: str, orders: Sequence[PartialOrder],
                codec: DomainCodec | None,
                registry: OrderRegistry | None = None):
    """Build the requested kernel flavour over schema-aligned orders.

    With an :class:`OrderRegistry`, compiled-family kernels (and their
    compiled orders) are deduped across callers holding equal orders;
    the registry hands out its own flavour, which monitors construct to
    match their configured kernel.
    """
    cls = kernel_class(kernel)
    if cls is InterpretedKernel:
        return InterpretedKernel(orders)
    if codec is None:
        raise ReproError(
            f"{kernel!r} kernels need a shared DomainCodec")
    if registry is not None:
        return registry.kernel(orders)
    return cls(orders, codec)
