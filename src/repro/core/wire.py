"""Compact code-row wire frames for the sharded data plane.

DESIGN.md §14.  Under the ``processes`` executor the façade performs
the single coerce+encode pass of a batch and ships each shard one
binary **frame** instead of a pickled object list.  A frame carries:

* a fixed-size header (magic, flags, matrix dtype, row width, row
  count, the replica codec version the frame was encoded against, the
  oid of the first row, and the codec-delta byte length);
* the **codec delta** — the master codec's interning-journal suffix
  since the replica's last known version, pickled (values are arbitrary
  Python objects; the delta is empty on the overwhelming majority of
  frames once domains stabilise);
* the row **oids** — elided entirely when they form a contiguous run
  (the common case for façade-coerced streams), an explicit ``int64``
  array otherwise;
* the **code matrix** — ``n_rows × width`` interned value codes in the
  smallest unsigned dtype that fits the codec's current tables.

The receiving shard applies the delta to its replica codec (append-only
and idempotent, so replicas never recompile or diverge — see
``DomainCodec.apply_delta``), rebuilds ``Object`` instances by decoding
each code row, and dispatches through
``IngestPipeline.push_encoded`` — charging zero encode passes, which is
what makes "exactly one encode pass per batch for any shard count"
measurable rather than aspirational.

Frames are self-framing against the command channel: the first byte is
:data:`MAGIC` (``0x57``, ``b"W"``), which can never open a pickle
stream (pickle protocol ≥ 2 starts with ``0x80``), so a worker reading
raw bytes dispatches on one byte with no ambiguity.
"""

from __future__ import annotations

import pickle
import struct

import numpy as np

from repro.core.errors import ReproError
from repro.data.objects import Object

#: First byte of every frame; disjoint from pickle's ``\\x80`` opcode.
MAGIC = 0x57

#: magic, flags, width, n_rows, base_version, oid_start, delta_bytes.
_HEADER = struct.Struct("<BBHIIqI")

#: Header flag: row oids are ``oid_start .. oid_start + n_rows - 1``.
_FLAG_CONTIGUOUS = 0x01

#: Code-matrix dtypes by header dtype code (flags bits 1-2).  Codes are
#: table indices, so the frame always fits one of the unsigned widths;
#: the façade picks the smallest that holds the codec's largest table.
_DTYPES = (np.uint8, np.uint16, np.uint32, np.uint64)


def _matrix_dtype_code(codec) -> int:
    """Smallest dtype code whose range covers every current table."""
    largest = max((len(table) for table in codec._tables), default=0)
    for code, dtype in enumerate(_DTYPES):
        if largest <= int(np.iinfo(dtype).max) + 1:
            return code
    raise ReproError(f"domain cardinality {largest} exceeds wire range")


def encode_frame(objects, encoded, delta, base_version: int) -> bytes:
    """Pack one shard's batch into a frame.

    *objects* and *encoded* are the façade's coerce+encode output for
    the rows routed to this shard; *delta* is the master codec's
    journal suffix the replica has not seen, and *base_version* the
    replica version it applies on top of.  The caller owns replica
    version bookkeeping — the frame just carries the numbers.
    """
    n_rows = len(objects)
    width = len(encoded[0]) if n_rows else 0
    flags = 0
    oid_start = objects[0].oid if n_rows else 0
    oids = [obj.oid for obj in objects]
    if oids == list(range(oid_start, oid_start + n_rows)):
        flags |= _FLAG_CONTIGUOUS
    # Sizing by the post-delta tables keeps encode/decode symmetric:
    # both ends see every code in the matrix within dtype range.
    largest = 0
    for row in encoded:
        for code in row:
            if code >= largest:
                largest = code + 1
    dtype_code = 0
    while largest > int(np.iinfo(_DTYPES[dtype_code]).max) + 1:
        dtype_code += 1
    flags |= dtype_code << 1
    delta_blob = pickle.dumps(tuple(delta), protocol=pickle.HIGHEST_PROTOCOL)
    parts = [_HEADER.pack(MAGIC, flags, width, n_rows, base_version,
                          oid_start, len(delta_blob)), delta_blob]
    if not flags & _FLAG_CONTIGUOUS:
        parts.append(np.asarray(oids, dtype=np.int64).tobytes())
    if n_rows:
        matrix = np.asarray(encoded, dtype=_DTYPES[dtype_code])
        parts.append(matrix.tobytes())
    return b"".join(parts)


def decode_frame(blob: bytes, codec) -> tuple[list[Object], list[tuple]]:
    """Unpack a frame against the receiving shard's replica codec.

    Applies the carried codec delta first (idempotent; replicas only
    ever append), then rebuilds the batch as ``(objects, encoded)``
    ready for ``IngestPipeline.push_encoded``.  Raises
    :class:`ReproError` when the frame's base version is ahead of the
    replica — deltas arrived out of order, which the façade's in-order
    pipe protocol should make impossible.
    """
    (magic, flags, width, n_rows, base_version,
     oid_start, delta_bytes) = _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise ReproError(f"bad wire frame magic {magic:#x}")
    offset = _HEADER.size
    delta = pickle.loads(blob[offset:offset + delta_bytes])
    offset += delta_bytes
    if base_version > codec.version:
        raise ReproError(
            f"wire frame base version {base_version} is ahead of the "
            f"replica codec at version {codec.version}")
    codec.apply_delta(delta)
    if flags & _FLAG_CONTIGUOUS:
        oids = range(oid_start, oid_start + n_rows)
    else:
        count = n_rows * np.dtype(np.int64).itemsize
        oids = np.frombuffer(blob, dtype=np.int64, count=n_rows,
                             offset=offset).tolist()
        offset += count
    if n_rows:
        dtype = _DTYPES[(flags >> 1) & 0x3]
        matrix = np.frombuffer(blob, dtype=dtype, count=n_rows * width,
                               offset=offset).reshape(n_rows, width)
        # .tolist() yields Python ints — code tuples must hash and
        # compare exactly like the serial monitor's, or memo keys and
        # frontier bookkeeping would silently diverge by np-int type.
        rows = matrix.tolist()
    else:
        rows = []
    objects = []
    encoded = []
    for oid, row in zip(oids, rows):
        codes = tuple(row)
        objects.append(Object(oid, codec.decode(codes)))
        encoded.append(codes)
    return objects, encoded
