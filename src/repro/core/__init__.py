"""Core algorithms of the paper: partial orders, dominance, Pareto
frontier maintenance, and the monitor family (Algorithms 1–5)."""
