"""Live maintenance of target-user sets ``C_o`` (Definition 3.4).

Algorithm 1 does not only *report* the target users of the newest object;
it keeps every object's target set current (``C_o' ← C_o' − {c}`` when
``o'`` falls out of ``P_c``).  :class:`TargetRegistry` centralises that
bookkeeping: per-user Pareto frontiers notify it on every insertion and
removal, so ``targets_of(o)`` is exact at any instant, for any monitor.

Registries are optional (pass ``track_targets=True`` to a monitor); the
hot path pays nothing when tracking is off.
"""

from __future__ import annotations

from typing import Hashable, Iterator

UserId = Hashable


class TargetRegistry:
    """Mapping ``object id → set of users currently holding it Pareto``."""

    __slots__ = ("_targets",)

    def __init__(self) -> None:
        self._targets: dict[int, set[UserId]] = {}

    def insert(self, user: UserId, oid: int) -> None:
        """Record that *oid* entered ``P_c`` of *user*."""
        self._targets.setdefault(oid, set()).add(user)

    def remove(self, user: UserId, oid: int) -> None:
        """Record that *oid* left ``P_c`` of *user* (eviction, expiry)."""
        users = self._targets.get(oid)
        if users is None:
            return
        users.discard(user)
        if not users:
            del self._targets[oid]

    def targets_of(self, oid: int) -> frozenset:
        """Current ``C_o``: empty once no user holds the object Pareto."""
        return frozenset(self._targets.get(oid, ()))

    def objects_of(self, user: UserId) -> frozenset:
        """All object ids currently Pareto-optimal for *user*."""
        return frozenset(oid for oid, users in self._targets.items()
                         if user in users)

    def __len__(self) -> int:
        return len(self._targets)

    def __contains__(self, oid: int) -> bool:
        return oid in self._targets

    def items(self) -> Iterator[tuple[int, frozenset]]:
        for oid, users in self._targets.items():
            yield oid, frozenset(users)

    def __repr__(self) -> str:
        return f"TargetRegistry({len(self._targets)} live objects)"
