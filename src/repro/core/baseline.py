"""Algorithm 1 — the per-user Baseline monitor.

For every incoming object, Baseline updates the Pareto frontier of *every*
user independently (the basic skyline insert applied ``|C|`` times).  It is
exact and simple, and exists both as the correctness oracle for the shared
and approximate monitors and as the comparison baseline of every figure in
Section 8.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.clusters import UserId
from repro.core.compiled import DomainCodec, make_kernel, validate_kernel
from repro.core.errors import ReproError
from repro.core.pareto import ParetoFrontier
from repro.core.preference import Preference
from repro.core.targets import TargetRegistry
from repro.data.objects import Object, Schema
from repro.metrics.counters import MonitorStats


class MonitorBase:
    """Shared plumbing for the append-only monitors.

    Subclasses implement :meth:`_process` and expose per-user frontiers via
    :meth:`frontier`.  :meth:`push` accepts either a ready
    :class:`~repro.data.objects.Object` or a raw row (sequence or mapping
    aligned with the schema) and returns the object's target users
    ``C_o`` (Definition 3.4).

    Every monitor selects a dominance kernel at construction:
    ``kernel="compiled"`` (default) interns attribute values through a
    monitor-wide :class:`~repro.core.compiled.DomainCodec` and runs the
    bitset dominance matrices of :mod:`repro.core.compiled`;
    ``kernel="interpreted"`` keeps the pure-Python reference path.  Both
    return identical notifications, frontiers and comparison counts.
    """

    def __init__(self, schema: Sequence[str], track_targets: bool = False,
                 kernel: str = "compiled"):
        self.schema: Schema = tuple(schema)
        self.stats = MonitorStats()
        self.kernel_name = validate_kernel(kernel)
        #: Monitor-wide value interner (None under the interpreted kernel).
        self.codec: DomainCodec | None = (
            DomainCodec(self.schema) if kernel == "compiled" else None)
        self._next_oid = 0
        #: Live C_o bookkeeping (Definition 3.4) when requested.
        self.targets: TargetRegistry | None = (
            TargetRegistry() if track_targets else None)

    def _make_kernel(self, preference: Preference):
        """Compile (or wrap) one preference for this monitor's schema."""
        return make_kernel(self.kernel_name,
                           preference.aligned(self.schema), self.codec)

    # -- input handling -------------------------------------------------

    def _coerce(self, row) -> Object:
        if isinstance(row, Object):
            self._next_oid = max(self._next_oid, row.oid + 1)
            return row
        if isinstance(row, Mapping):
            values = tuple(row[attr] for attr in self.schema)
        else:
            values = tuple(row)
        obj = Object(self._next_oid, values)
        self._next_oid += 1
        return obj

    def _encode(self, obj: Object):
        """Intern the object's values once for this arrival."""
        codec = self.codec
        return codec.encode(obj.values) if codec is not None else None

    def push(self, row) -> frozenset[UserId]:
        """Process one arrival; returns the target users of the object."""
        obj = self._coerce(row)
        return self._push_object(obj, self._encode(obj))

    def push_batch(self, rows) -> list[frozenset[UserId]]:
        """Process many arrivals, amortising per-push overhead.

        Rows are coerced and value-interned in one batched pass
        (:meth:`DomainCodec.encode_many`) before any frontier is touched,
        so per-arrival Python overhead is paid once per batch item rather
        than once per user.  Results are identical to calling
        :meth:`push` per row, in order.
        """
        objects = [self._coerce(row) for row in rows]
        codec = self.codec
        if codec is not None:
            encoded = codec.encode_many([obj.values for obj in objects])
        else:
            encoded = [None] * len(objects)
        return [self._push_object(obj, codes)
                for obj, codes in zip(objects, encoded)]

    def push_all(self, rows) -> list[frozenset[UserId]]:
        """Alias of :meth:`push_batch`, kept for API compatibility."""
        return self.push_batch(rows)

    def _push_object(self, obj: Object, codes) -> frozenset[UserId]:
        self.stats.objects += 1
        targets = self._process(obj, codes)
        self.stats.delivered += len(targets)
        return targets

    def _process(self, obj: Object, codes=None) -> frozenset[UserId]:
        raise NotImplementedError

    # -- inspection ------------------------------------------------------

    def frontier(self, user: UserId) -> tuple[Object, ...]:
        """Current Pareto frontier ``P_c`` of *user*, in arrival order."""
        raise NotImplementedError

    def frontier_ids(self, user: UserId) -> frozenset[int]:
        """Object ids of ``P_c``."""
        return frozenset(obj.oid for obj in self.frontier(user))

    def targets_of(self, oid: int) -> frozenset[UserId]:
        """Current ``C_o`` of a past object (requires tracking).

        Unlike the value returned by :meth:`push`, this reflects later
        evictions: an object stops being a target once something
        dominating it arrives (and, under windows, resumes if the
        dominator expires).
        """
        if self.targets is None:
            raise ReproError(
                "target tracking is off; construct the monitor with "
                "track_targets=True")
        return self.targets.targets_of(oid)


class Baseline(MonitorBase):
    """Algorithm 1: independent Pareto-frontier maintenance per user."""

    def __init__(self, preferences: Mapping[UserId, Preference],
                 schema: Sequence[str], track_targets: bool = False,
                 kernel: str = "compiled"):
        super().__init__(schema, track_targets, kernel)
        self._preferences: dict[UserId, Preference] = dict(preferences)
        self._frontiers: dict[UserId, ParetoFrontier] = {
            user: ParetoFrontier(self._make_kernel(pref),
                                 self.stats.filter, self.targets, user)
            for user, pref in preferences.items()
        }

    @property
    def users(self) -> tuple[UserId, ...]:
        return tuple(self._frontiers)

    def add_user(self, user: UserId, preference: Preference,
                 history: Sequence[Object] = ()) -> None:
        """Register a new user mid-stream.

        The monitor does not retain past objects, so the caller supplies
        whatever *history* the new user should compete over (often the
        recent tail of the feed); with no history the user's frontier
        starts empty and fills from future arrivals.
        """
        if user in self._frontiers:
            raise ValueError(f"user {user!r} already registered")
        frontier = ParetoFrontier(self._make_kernel(preference),
                                  self.stats.filter, self.targets, user)
        for obj in history:
            frontier.add(obj)
        self._preferences[user] = preference
        self._frontiers[user] = frontier

    def remove_user(self, user: UserId) -> None:
        """Unregister a user; their target-set entries are withdrawn."""
        frontier = self._frontiers.pop(user)
        self._preferences.pop(user, None)
        frontier.clear()

    def _process(self, obj: Object, codes=None) -> frozenset[UserId]:
        targets = [
            user for user, frontier in self._frontiers.items()
            if frontier.add(obj, codes).is_pareto
        ]
        return frozenset(targets)

    def frontier(self, user: UserId) -> tuple[Object, ...]:
        return tuple(self._frontiers[user].members)


def brute_force_frontier(preference: Preference, objects: Sequence[Object],
                         schema: Schema) -> list[Object]:
    """Quadratic from-scratch Pareto frontier (test oracle, not monitor).

    Computes ``P_c`` by comparing every pair of objects; identical objects
    are all retained, matching Definition 3.3 (only *dominance* excludes an
    object).
    """
    orders = preference.aligned(schema)
    from repro.core.dominance import dominates

    frontier = []
    for candidate in objects:
        if not any(dominates(orders, other, candidate)
                   for other in objects):
            frontier.append(candidate)
    return frontier
