"""Algorithm 1 — the per-user Baseline monitor.

For every incoming object, Baseline updates the Pareto frontier of *every*
user independently (the basic skyline insert applied ``|C|`` times).  It is
exact and simple, and exists both as the correctness oracle for the shared
and approximate monitors and as the comparison baseline of every figure in
Section 8.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.batch import batch_sieve
from repro.core.clusters import UserId
from repro.core.compiled import (DomainCodec, OrderRegistry, make_kernel,
                                 validate_kernel)
from repro.core.errors import ReproError, SchemaMismatchError
from repro.core.pareto import ParetoFrontier
from repro.core.preference import Preference
from repro.core.targets import TargetRegistry
from repro.data.objects import Object, Schema
from repro.metrics.counters import MonitorStats


class MonitorBase:
    """Shared plumbing for the append-only monitors.

    Subclasses implement :meth:`_process` and expose per-user frontiers via
    :meth:`frontier`.  :meth:`push` accepts either a ready
    :class:`~repro.data.objects.Object` or a raw row (sequence or mapping
    aligned with the schema) and returns the object's target users
    ``C_o`` (Definition 3.4).

    Every monitor selects a dominance kernel at construction:
    ``kernel="compiled"`` (default) interns attribute values through a
    monitor-wide :class:`~repro.core.compiled.DomainCodec` and runs the
    bitset dominance matrices of :mod:`repro.core.compiled`;
    ``kernel="interpreted"`` keeps the pure-Python reference path.  Both
    return identical notifications, frontiers and comparison counts.
    """

    def __init__(self, schema: Sequence[str], track_targets: bool = False,
                 kernel: str = "compiled"):
        self.schema: Schema = tuple(schema)
        self.stats = MonitorStats()
        self.kernel_name = validate_kernel(kernel)
        #: Monitor-wide value interner (None under the interpreted kernel).
        self.codec: DomainCodec | None = (
            DomainCodec(self.schema) if kernel == "compiled" else None)
        #: Monitor-wide shared-order registry: users/clusters holding
        #: equal orders share one CompiledOrder and CompiledKernel.
        self.registry: OrderRegistry | None = (
            OrderRegistry(self.codec) if self.codec is not None else None)
        self._next_oid = 0
        #: Live C_o bookkeeping (Definition 3.4) when requested.
        self.targets: TargetRegistry | None = (
            TargetRegistry() if track_targets else None)

    def _make_kernel(self, preference: Preference):
        """Compile (or wrap) one preference for this monitor's schema.

        Compiled kernels are deduped through the monitor's
        :class:`~repro.core.compiled.OrderRegistry`, so two users with
        equal preferences get the *same* kernel object.
        """
        return make_kernel(self.kernel_name,
                           preference.aligned(self.schema), self.codec,
                           self.registry)

    # -- input handling -------------------------------------------------

    def _coerce(self, row) -> Object:
        if isinstance(row, Object):
            self._check_width(row.values)
            self._next_oid = max(self._next_oid, row.oid + 1)
            return row
        if isinstance(row, Mapping):
            values = tuple(row[attr] for attr in self.schema)
        else:
            values = tuple(row)
            self._check_width(values)
        obj = Object(self._next_oid, values)
        self._next_oid += 1
        return obj

    def _check_width(self, values) -> None:
        """Reject rows whose width disagrees with the schema — a silent
        zip truncation downstream would corrupt every dominance verdict
        for the arrival."""
        if len(values) != len(self.schema):
            raise SchemaMismatchError(
                self.schema, values,
                message=f"row has {len(values)} values {tuple(values)!r} "
                        f"for the {len(self.schema)}-attribute schema "
                        f"{self.schema!r}")

    def _encode(self, obj: Object):
        """Intern the object's values once for this arrival."""
        codec = self.codec
        return codec.encode(obj.values) if codec is not None else None

    def push(self, row) -> frozenset[UserId]:
        """Process one arrival; returns the target users of the object."""
        obj = self._coerce(row)
        return self._push_object(obj, self._encode(obj))

    def _coerce_encode(self, rows) -> tuple[list[Object], list]:
        """Coerce and value-intern a batch once, before any frontier."""
        objects = [self._coerce(row) for row in rows]
        codec = self.codec
        if codec is not None:
            encoded = codec.encode_many([obj.values for obj in objects])
        else:
            encoded = [None] * len(objects)
        return objects, encoded

    def push_batch(self, rows) -> list[frozenset[UserId]]:
        """Process many arrivals as one batch.

        Per-row notifications and final frontiers are identical to
        calling :meth:`push` per row, in order.  The concrete monitors
        override this with a true batch algorithm (an intra-batch sieve
        under each user's/cluster's orders — see
        :func:`repro.core.batch.batch_sieve` — followed by one frontier
        merge per user), cutting comparisons, not just per-push
        overhead; this base version amortises coercion and value
        interning only.
        """
        objects, encoded = self._coerce_encode(rows)
        return [self._push_object(obj, codes)
                for obj, codes in zip(objects, encoded)]

    def push_all(self, rows) -> list[frozenset[UserId]]:
        """Alias of :meth:`push_batch`, kept for API compatibility."""
        return self.push_batch(rows)

    def _push_object(self, obj: Object, codes) -> frozenset[UserId]:
        self.stats.objects += 1
        targets = self._process(obj, codes)
        self.stats.delivered += len(targets)
        return targets

    def _process(self, obj: Object, codes=None) -> frozenset[UserId]:
        raise NotImplementedError

    # -- inspection ------------------------------------------------------

    def frontier(self, user: UserId) -> tuple[Object, ...]:
        """Current Pareto frontier ``P_c`` of *user*, in arrival order."""
        raise NotImplementedError

    def frontier_ids(self, user: UserId) -> frozenset[int]:
        """Object ids of ``P_c``."""
        return frozenset(obj.oid for obj in self.frontier(user))

    def targets_of(self, oid: int) -> frozenset[UserId]:
        """Current ``C_o`` of a past object (requires tracking).

        Unlike the value returned by :meth:`push`, this reflects later
        evictions: an object stops being a target once something
        dominating it arrives (and, under windows, resumes if the
        dominator expires).
        """
        if self.targets is None:
            raise ReproError(
                "target tracking is off; construct the monitor with "
                "track_targets=True")
        return self.targets.targets_of(oid)


class Baseline(MonitorBase):
    """Algorithm 1: independent Pareto-frontier maintenance per user."""

    def __init__(self, preferences: Mapping[UserId, Preference],
                 schema: Sequence[str], track_targets: bool = False,
                 kernel: str = "compiled"):
        super().__init__(schema, track_targets, kernel)
        self._preferences: dict[UserId, Preference] = dict(preferences)
        self._frontiers: dict[UserId, ParetoFrontier] = {
            user: ParetoFrontier(self._make_kernel(pref),
                                 self.stats.filter, self.targets, user)
            for user, pref in preferences.items()
        }

    @property
    def users(self) -> tuple[UserId, ...]:
        return tuple(self._frontiers)

    def add_user(self, user: UserId, preference: Preference,
                 history: Sequence[Object] = ()) -> None:
        """Register a new user mid-stream.

        The monitor does not retain past objects, so the caller supplies
        whatever *history* the new user should compete over (often the
        recent tail of the feed); with no history the user's frontier
        starts empty and fills from future arrivals.
        """
        if user in self._frontiers:
            raise ValueError(f"user {user!r} already registered")
        frontier = ParetoFrontier(self._make_kernel(preference),
                                  self.stats.filter, self.targets, user)
        for obj in history:
            frontier.add(obj)
        self._preferences[user] = preference
        self._frontiers[user] = frontier

    def remove_user(self, user: UserId) -> None:
        """Unregister a user; their target-set entries are withdrawn."""
        frontier = self._frontiers.pop(user)
        self._preferences.pop(user, None)
        frontier.clear()

    def _process(self, obj: Object, codes=None) -> frozenset[UserId]:
        targets = [
            user for user, frontier in self._frontiers.items()
            if frontier.add(obj, codes).is_pareto
        ]
        return frozenset(targets)

    def push_batch(self, rows) -> list[frozenset[UserId]]:
        """Batched Algorithm 1: sieve the batch per user, merge survivors.

        For each user an intra-batch sieve
        (:func:`~repro.core.batch.batch_sieve`) discards arrivals
        dominated by an earlier arrival under that user's orders before
        the frontier is touched, and surviving duplicates ride their
        leader's verdict (appended without a scan).  Notifications and
        final frontiers are identical to sequential :meth:`push`.
        Comparison accounting: every skipped or folded arrival saves a
        full frontier scan, at the price of one pass over the
        deduplicated batch window per *distinct* value tuple — a large
        net win on duplicate- or dominance-heavy streams (the paper's
        replayed workloads), a small constant overhead when every
        arrival is novel and Pareto.  The sieve itself is computed once
        per distinct order tuple, not once per user: its output depends
        only on the orders, so users sharing preferences share the pass
        (under both kernels, keeping their counts identical).
        """
        objects, encoded = self._coerce_encode(rows)
        if not objects:
            return []
        targets: list[set] = [set() for _ in objects]
        counter = self.stats.filter
        sieves: dict[tuple, tuple] = {}
        for user, frontier in self._frontiers.items():
            kernel = frontier.kernel
            result = sieves.get(kernel.orders)
            if result is None:
                result = batch_sieve(kernel, objects, encoded, counter)
                sieves[kernel.orders] = result
            skipped, leaders = result
            for i, obj in enumerate(objects):
                if skipped[i]:
                    continue
                leader = leaders[i]
                if leader is None:
                    if frontier.add(obj, encoded[i]).is_pareto:
                        targets[i].add(user)
                elif objects[leader].oid in frontier:
                    # Identical leader still Pareto ⟹ so is the copy,
                    # and it can evict nothing the leader did not.
                    frontier.append_unchecked(obj, encoded[i])
                    targets[i].add(user)
                # Leader rejected or since evicted ⟹ its dominator
                # chain rejects the copy too: nothing to do.
        self.stats.objects += len(objects)
        results = [frozenset(t) for t in targets]
        self.stats.delivered += sum(map(len, results))
        return results

    def frontier(self, user: UserId) -> tuple[Object, ...]:
        return tuple(self._frontiers[user].members)


def brute_force_frontier(preference: Preference, objects: Sequence[Object],
                         schema: Schema) -> list[Object]:
    """Quadratic from-scratch Pareto frontier (test oracle, not monitor).

    Computes ``P_c`` by comparing every pair of objects; identical objects
    are all retained, matching Definition 3.3 (only *dominance* excludes an
    object).
    """
    orders = preference.aligned(schema)
    from repro.core.dominance import dominates

    frontier = []
    for candidate in objects:
        if not any(dominates(orders, other, candidate)
                   for other in objects):
            frontier.append(candidate)
    return frontier
