"""Algorithm 1 — the per-user Baseline monitor.

For every incoming object, Baseline updates the Pareto frontier of *every*
user independently (the basic skyline insert applied ``|C|`` times).  It is
exact and simple, and exists both as the correctness oracle for the shared
and approximate monitors and as the comparison baseline of every figure in
Section 8.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.clusters import UserId
from repro.core.compiled import (DomainCodec, OrderRegistry, kernel_class,
                                 make_kernel, validate_kernel)
from repro.core.errors import ReproError
from repro.core.ingest import IngestPipeline
from repro.core.pareto import ParetoFrontier
from repro.core.preference import Preference
from repro.core.targets import TargetRegistry
from repro.data.objects import Object, Schema
from repro.metrics.counters import MonitorStats


class MonitorBase:
    """Shared plumbing for the monitors: kernel selection plus the
    arrival plane.

    All ingest — sequential :meth:`push` and batched :meth:`push_batch`
    alike — runs through one :class:`~repro.core.ingest.IngestPipeline`,
    which owns coercion, one-pass value encoding, the intra-batch sieve
    and per-arrival dispatch.  Concrete monitors are thin strategy
    objects over that plane: they select the frontier scopes to sieve
    under (:meth:`_sieve_scopes`) and assemble notifications per arrival
    (:meth:`_dispatch_arrival`); the sliding family adds window
    bookkeeping via :meth:`_pre_arrival` / :meth:`_sieve_horizon`.

    Every monitor selects a dominance kernel at construction (one of
    :data:`~repro.core.compiled.KERNELS`): ``kernel="compiled"``
    (default) interns attribute values through a monitor-wide
    :class:`~repro.core.compiled.DomainCodec` and runs the bitset
    dominance matrices of :mod:`repro.core.compiled`;
    ``kernel="vector"`` shares that code space but decides whole scans
    with numpy block ops over columnar frontiers
    (:mod:`repro.core.vector`); ``kernel="interpreted"`` keeps the
    pure-Python reference path.  All flavours return identical
    notifications, frontiers and buffers; compiled and interpreted also
    charge identical comparison counts, while the vector kernel charges
    the documented vector-equivalent (DESIGN.md §13).

    ``memo`` (default True) enables the cross-batch verdict memo of
    :mod:`repro.core.pareto`: value tuples whose frontier verdict is
    still valid (validated against the frontier's mutation epoch) are
    decided in O(1) without a scan.  Results are byte-identical either
    way; only comparison counts drop.
    """

    def __init__(self, schema: Sequence[str], track_targets: bool = False,
                 kernel: str = "compiled", memo: bool = True):
        self.schema: Schema = tuple(schema)
        self.stats = MonitorStats()
        self.kernel_name = validate_kernel(kernel)
        self.memo_enabled = bool(memo)
        #: Monitor-wide value interner (None under the interpreted
        #: kernel).  ``for_monitor`` consults the ``codec_source`` seam:
        #: shard monitors built by the wire plane adopt the façade's
        #: master codec (or a journal-replayed replica) so every shard
        #: speaks the same code space (DESIGN.md §14).
        self.codec: DomainCodec | None = (
            DomainCodec.for_monitor(self.schema)
            if self.kernel_name != "interpreted" else None)
        #: Monitor-wide shared-order registry: users/clusters holding
        #: equal orders share one compiled (or vector) order and kernel.
        self.registry: OrderRegistry | None = (
            OrderRegistry(self.codec, kernel_class(self.kernel_name))
            if self.codec is not None else None)
        #: The arrival plane (coerce → encode → sieve → dispatch).
        self.ingest = IngestPipeline(self)
        #: Live C_o bookkeeping (Definition 3.4) when requested.
        self.targets: TargetRegistry | None = (
            TargetRegistry() if track_targets else None)

    def _make_kernel(self, preference: Preference):
        """Compile (or wrap) one preference for this monitor's schema.

        Compiled kernels are deduped through the monitor's
        :class:`~repro.core.compiled.OrderRegistry`, so two users with
        equal preferences get the *same* kernel object.
        """
        return make_kernel(self.kernel_name,
                           preference.aligned(self.schema), self.codec,
                           self.registry)

    def _make_frontier(self, preference: Preference, counter,
                       owner=None) -> ParetoFrontier:
        """One per-scope frontier on the monitor's kernel and memo flag.

        Only user-owned frontiers report to the target registry;
        cluster-level sieve frontiers (``P_U``) pass no owner and stay
        out of ``C_o`` bookkeeping.
        """
        return ParetoFrontier(self._make_kernel(preference), counter,
                              self.targets if owner is not None else None,
                              owner, memo=self.memo_enabled)

    def _release_kernel(self, kernel) -> None:
        """Return one kernel acquisition to the shared-order registry.

        Every frontier built through :meth:`_make_frontier` holds one
        registry reference; user-churn teardown paths release it here so
        departed tastes do not pin compiled state (and verdict memos)
        for the life of the service.  No-op under the interpreted
        kernel, which has no registry.
        """
        if self.registry is not None:
            self.registry.release(kernel)

    # -- ingest ----------------------------------------------------------

    def _coerce(self, row) -> Object:
        return self.ingest.coerce(row)

    def push(self, row) -> frozenset[UserId]:
        """Process one arrival; returns the target users of the object."""
        return self.ingest.push(row)

    def push_batch(self, rows) -> list[frozenset[UserId]]:
        """Process many arrivals as one batch.

        Per-row notifications and final frontiers are identical to
        calling :meth:`push` per row, in order, while the pipeline's
        intra-batch sieve (:func:`repro.core.batch.batch_sieve`) and the
        cross-batch verdict memo cut comparisons, not just per-push
        overhead, on duplicate-heavy streams.
        """
        return self.ingest.push_batch(rows)

    def push_all(self, rows) -> list[frozenset[UserId]]:
        """Alias of :meth:`push_batch`, kept for API compatibility."""
        return self.ingest.push_batch(rows)

    # -- strategy hooks (the monitor side of the arrival plane) ----------

    def _sieve_scopes(self):
        """``(scope key, kernel)`` pairs for the pipeline's sieve."""
        raise NotImplementedError

    def _dispatch_arrival(self, obj: Object, codes, offset: int = 0,
                          sieves=None) -> frozenset[UserId]:
        """Offer one arrival to every frontier; assemble its targets."""
        raise NotImplementedError

    def _pre_arrival(self, obj: Object, codes) -> None:
        """Bookkeeping before frontier work (window expiry lives here)."""

    def _sieve_horizon(self) -> int | None:
        """Largest batch prefix one sieve may cover (None: unbounded)."""
        return None

    # -- inspection ------------------------------------------------------

    def frontier(self, user: UserId) -> tuple[Object, ...]:
        """Current Pareto frontier ``P_c`` of *user*, in arrival order."""
        raise NotImplementedError

    def frontier_ids(self, user: UserId) -> frozenset[int]:
        """Object ids of ``P_c``."""
        return frozenset(obj.oid for obj in self.frontier(user))

    def targets_of(self, oid: int) -> frozenset[UserId]:
        """Current ``C_o`` of a past object (requires tracking).

        Unlike the value returned by :meth:`push`, this reflects later
        evictions: an object stops being a target once something
        dominating it arrives (and, under windows, resumes if the
        dominator expires).
        """
        if self.targets is None:
            raise ReproError(
                "target tracking is off; construct the monitor with "
                "track_targets=True")
        return self.targets.targets_of(oid)


class Baseline(MonitorBase):
    """Algorithm 1: independent Pareto-frontier maintenance per user.

    As an arrival-plane strategy, Baseline sieves under each user's own
    orders (shared per distinct order tuple) and offers survivors to the
    per-user frontiers; surviving duplicates ride their leader's verdict
    (appended without a scan when the identical leader is still a
    member — it can evict nothing the leader did not, and its dominator
    chain rejects the copy when the leader is gone).
    """

    def __init__(self, preferences: Mapping[UserId, Preference],
                 schema: Sequence[str], track_targets: bool = False,
                 kernel: str = "compiled", memo: bool = True):
        super().__init__(schema, track_targets, kernel, memo)
        self._preferences: dict[UserId, Preference] = dict(preferences)
        self._frontiers: dict[UserId, ParetoFrontier] = {
            user: self._make_frontier(pref, self.stats.filter, user)
            for user, pref in preferences.items()
        }

    @property
    def users(self) -> tuple[UserId, ...]:
        return tuple(self._frontiers)

    @property
    def preferences(self) -> dict[UserId, Preference]:
        """Current user → preference mapping (a copy; safe to mutate)."""
        return dict(self._preferences)

    def add_user(self, user: UserId, preference: Preference,
                 history: Sequence[Object] = ()) -> None:
        """Register a new user mid-stream.

        The monitor does not retain past objects, so the caller supplies
        whatever *history* the new user should compete over (often the
        recent tail of the feed); with no history the user's frontier
        starts empty and fills from future arrivals.
        """
        if user in self._frontiers:
            raise ValueError(f"user {user!r} already registered")
        # Coerce before acquiring anything: malformed history rows fail
        # as loudly as malformed feed arrivals, and they fail before a
        # kernel acquisition could leak into the registry.
        history = [self.ingest.coerce(row) for row in history]
        frontier = self._make_frontier(preference, self.stats.filter, user)
        for obj in history:
            frontier.add(obj, self.ingest.encode(obj))
        self._preferences[user] = preference
        self._frontiers[user] = frontier

    def remove_user(self, user: UserId) -> None:
        """Unregister a user; their target-set entries are withdrawn and
        their kernel acquisition returns to the shared-order registry."""
        frontier = self._frontiers.pop(user)
        self._preferences.pop(user, None)
        frontier.clear()
        self._release_kernel(frontier.kernel)

    def export_user(self, user: UserId) -> tuple:
        """Detach *user*'s scope for a verbatim shard move.

        Captures the preference and the frontier's exported state
        (members, code rows, valid memo verdicts) *before* the regular
        teardown runs, so the pair can be re-installed elsewhere via
        :meth:`adopt_user` with no replay and no comparisons charged —
        the count-neutral relocation primitive behind plan rebalancing
        (DESIGN.md §14).
        """
        preference = self._preferences[user]
        state = self._frontiers[user].export_state()
        self.remove_user(user)
        return preference, state

    def adopt_user(self, user: UserId, preference: Preference,
                   state: tuple) -> None:
        """Install a scope exported by :meth:`export_user` verbatim."""
        if user in self._preferences:
            raise ValueError(f"user {user!r} already registered")
        frontier = self._make_frontier(preference, self.stats.filter, user)
        frontier.adopt_state(*state)
        self._preferences[user] = preference
        self._frontiers[user] = frontier

    # -- arrival-plane strategy ------------------------------------------

    def _sieve_scopes(self):
        return [(user, frontier.kernel)
                for user, frontier in self._frontiers.items()]

    def _dispatch_arrival(self, obj: Object, codes, offset: int = 0,
                          sieves=None) -> frozenset[UserId]:
        targets = []
        if sieves is None:
            for user, frontier in self._frontiers.items():
                if frontier.add(obj, codes).is_pareto:
                    targets.append(user)
            return frozenset(targets)
        for user, frontier in self._frontiers.items():
            # The scope set is mutable (service-driven churn between
            # chunks); a scope the sieve did not cover takes the full
            # scan path.
            sieve = sieves.get(user)
            if sieve is None:
                if frontier.add(obj, codes).is_pareto:
                    targets.append(user)
                continue
            skipped, leaders = sieve
            if skipped[offset]:
                # Dominated by a batch predecessor ⟹ a rejecting scan
                # is guaranteed: skip it.
                continue
            leader = leaders[offset]
            if leader is None:
                if frontier.add(obj, codes).is_pareto:
                    targets.append(user)
            elif leader.oid in frontier:
                # Identical leader still Pareto ⟹ so is the copy,
                # and it can evict nothing the leader did not.
                frontier.append_unchecked(obj, codes)
                targets.append(user)
            # Leader rejected or since evicted ⟹ its dominator
            # chain rejects the copy too: nothing to do.
        return frozenset(targets)

    def frontier(self, user: UserId) -> tuple[Object, ...]:
        return tuple(self._frontiers[user].members)


def brute_force_frontier(preference: Preference, objects: Sequence[Object],
                         schema: Schema) -> list[Object]:
    """Quadratic from-scratch Pareto frontier (test oracle, not monitor).

    Computes ``P_c`` by comparing every pair of objects; identical objects
    are all retained, matching Definition 3.3 (only *dominance* excludes an
    object).
    """
    orders = preference.aligned(schema)
    from repro.core.dominance import dominates

    frontier = []
    for candidate in objects:
        if not any(dominates(orders, other, candidate)
                   for other in objects):
            frontier.append(candidate)
    return frontier
