"""The arrival plane: one ingest pipeline shared by all six monitors.

Historically every monitor family re-implemented the same arrival
choreography — coerce the row, encode its values once, sieve the batch,
offer the arrival to each frontier, assemble notifications — in its own
``push``/``push_batch`` overrides.  :class:`IngestPipeline` owns that
choreography once, monitor-wide:

* **coercion** — raw rows (sequences or mappings aligned with the
  schema, or ready :class:`~repro.data.objects.Object` instances) become
  objects with sequential ids, with loud
  :class:`~repro.core.errors.SchemaMismatchError` on width mismatches;
* **one-pass encoding** — values are interned through the monitor's
  :class:`~repro.core.compiled.DomainCodec` exactly once per arrival,
  regardless of user count (``None`` codes under the interpreted
  kernel);
* **the intra-batch sieve** — :func:`repro.core.batch.batch_sieve` runs
  once per *distinct order tuple* per chunk (users and clusters sharing
  preferences share the pass), with leader indices resolved to objects
  so monitors can fold surviving duplicates by an O(1)
  is-the-leader-still-a-member check;
* **per-frontier dispatch** — each arrival is handed to the monitor's
  strategy hooks in arrival order, with window chunking (sliding
  monitors sieve per ≤W chunk so a marked arrival's dominator is still
  alive when the arrival is processed — see DESIGN.md §9.2).

Monitors are reduced to thin strategy objects over this plane.  They
implement:

``_sieve_scopes()``
    ``(scope key, kernel)`` pairs — one per sieve scope (per user for
    the baselines, per cluster under ``≻_U`` for the shared families).
``_dispatch_arrival(obj, codes, offset=0, sieves=None)``
    offer one arrival to the monitor's frontier set and assemble its
    notification set; *sieves* maps scope keys to this chunk's
    ``(skipped, leader objects)`` verdicts (None on the sequential
    path).
``_pre_arrival(obj, codes)``
    per-arrival bookkeeping that precedes frontier work (the sliding
    monitors expire the ``W``-old object and append to the alive
    window here; append-only monitors inherit the no-op).
``_sieve_horizon()``
    the largest batch prefix one sieve may cover (``None`` for
    append-only monitors, the window size for sliding ones).

Sequential ``push`` and batched ``push_batch`` are the *same* dispatch
path — a push is a chunk of one with no sieve — so any cross-batch
optimisation wired into the frontiers (the verdict memo of
:mod:`repro.core.pareto`) benefits both identically.

The scope set is **mutable**: the pipeline re-queries
``_sieve_scopes()`` per chunk, and monitors treat a scope the sieve did
not cover as unsieved (full-scan path), so subscriptions may churn
between feeds — the contract :class:`~repro.service.MonitorService`
builds its lifecycle ops on — without the pipeline holding any stale
per-user state.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.batch import batch_sieve
from repro.core.errors import SchemaMismatchError
from repro.data.objects import Object


class IngestPipeline:
    """Coerce → encode → sieve → dispatch, for one monitor."""

    __slots__ = ("monitor", "schema", "codec", "_next_oid")

    def __init__(self, monitor):
        self.monitor = monitor
        self.schema = monitor.schema
        self.codec = monitor.codec
        self._next_oid = 0

    @property
    def next_oid(self) -> int:
        """The id the next coerced raw row will receive (snapshots
        persist this so restored services keep assigning fresh ids)."""
        return self._next_oid

    @next_oid.setter
    def next_oid(self, value: int) -> None:
        self._next_oid = int(value)

    # ------------------------------------------------------------------
    # Coercion and encoding
    # ------------------------------------------------------------------

    def coerce(self, row) -> Object:
        """Turn one raw row into an :class:`Object` with a fresh id."""
        if isinstance(row, Object):
            self._check_width(row.values)
            self._next_oid = max(self._next_oid, row.oid + 1)
            return row
        if isinstance(row, Mapping):
            values = tuple(row[attr] for attr in self.schema)
        else:
            values = tuple(row)
            self._check_width(values)
        obj = Object(self._next_oid, values)
        self._next_oid += 1
        return obj

    def _check_width(self, values) -> None:
        """Reject rows whose width disagrees with the schema — a silent
        zip truncation downstream would corrupt every dominance verdict
        for the arrival."""
        if len(values) != len(self.schema):
            raise SchemaMismatchError(
                self.schema, values,
                message=f"row has {len(values)} values {tuple(values)!r} "
                        f"for the {len(self.schema)}-attribute schema "
                        f"{self.schema!r}")

    def encode(self, obj: Object):
        """Intern the object's values once for this arrival."""
        codec = self.codec
        return codec.encode(obj.values) if codec is not None else None

    def coerce_encode(self, rows) -> tuple[list[Object], list]:
        """Coerce and value-intern a batch once, before any frontier."""
        objects = [self.coerce(row) for row in rows]
        codec = self.codec
        self.monitor.stats.encode_passes += 1
        if codec is not None:
            encoded = codec.encode_many([obj.values for obj in objects])
        else:
            encoded = [None] * len(objects)
        return objects, encoded

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def push(self, row) -> frozenset:
        """Process one arrival; returns the target users of the object."""
        monitor = self.monitor
        obj = self.coerce(row)
        codes = self.encode(obj)
        stats = monitor.stats
        stats.encode_passes += 1
        stats.objects += 1
        monitor._pre_arrival(obj, codes)
        targets = monitor._dispatch_arrival(obj, codes)
        stats.delivered += len(targets)
        return targets

    def push_batch(self, rows) -> list[frozenset]:
        """Process many arrivals as one batch.

        Per-row notifications, final frontiers (and, under windows,
        buffers) are identical to calling :meth:`push` per row, in
        order; arrivals the sieve proves redundant skip their frontier
        scans, and surviving duplicates fold onto their leader's
        verdict.
        """
        objects, encoded = self.coerce_encode(rows)
        return self._dispatch_encoded(objects, encoded)

    def push_encoded(self, objects, encoded) -> list[frozenset]:
        """Dispatch a batch already coerced and encoded upstream.

        The wire plane's shard entry point (DESIGN.md §14): the façade's
        master codec performed the single coerce+encode pass and the
        code rows arrived by frame (or by reference under the in-process
        executors), so this path charges no encode pass and never
        touches the codec — it only advances the oid cursor and runs the
        exact sieve+dispatch loop :meth:`push_batch` runs, keeping every
        downstream count serial-identical.
        """
        for obj in objects:
            if obj.oid >= self._next_oid:
                self._next_oid = obj.oid + 1
        return self._dispatch_encoded(objects, encoded)

    def _dispatch_encoded(self, objects, encoded) -> list[frozenset]:
        """The shared sieve+dispatch loop behind both batch entries."""
        monitor = self.monitor
        results: list[frozenset] = []
        if not objects:
            return results
        horizon = monitor._sieve_horizon() or len(objects)
        stats = monitor.stats
        pre_arrival = monitor._pre_arrival
        dispatch = monitor._dispatch_arrival
        for start in range(0, len(objects), horizon):
            chunk = objects[start:start + horizon]
            chunk_codes = encoded[start:start + horizon]
            sieves = self._sieve_chunk(chunk, chunk_codes)
            for offset, (obj, codes) in enumerate(zip(chunk, chunk_codes)):
                stats.objects += 1
                pre_arrival(obj, codes)
                targets = dispatch(obj, codes, offset, sieves)
                stats.delivered += len(targets)
                results.append(targets)
        return results

    def _sieve_chunk(self, objects, encoded) -> dict:
        """Scope key → ``(skipped, leader objects)`` for one chunk.

        The sieve's output depends only on the kernel's orders, so it is
        computed once per distinct order tuple and shared by every scope
        holding equal orders (under both kernels, keeping their counts
        identical).  Leader indices are resolved to objects so dispatch
        can fold duplicates without touching chunk offsets.
        """
        monitor = self.monitor
        counter = monitor.stats.filter
        cache: dict[tuple, tuple] = {}
        sieves: dict = {}
        for key, kernel in monitor._sieve_scopes():
            result = cache.get(kernel.orders)
            if result is None:
                skipped, leaders = batch_sieve(kernel, objects, encoded,
                                               counter)
                leader_objs = [None if leader is None else objects[leader]
                               for leader in leaders]
                result = (skipped, leader_objs)
                cache[kernel.orders] = result
            sieves[key] = result
        return sieves
