"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class.  Errors carry enough context (attribute names, the
offending values) to be actionable without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class CycleError(ReproError):
    """A set of preference tuples contains a cycle.

    A strict partial order is irreflexive and transitive, which together
    forbid cycles (Definition 3.1 of the paper).  The offending cycle, when
    known, is stored in :attr:`cycle` as a list of values ``[v0, v1, ...,
    v0]``.
    """

    def __init__(self, message: str, cycle: list | None = None):
        super().__init__(message)
        self.cycle = list(cycle) if cycle is not None else None


class ReflexiveTupleError(ReproError):
    """A preference tuple of the form ``(x, x)`` was supplied.

    Strict partial orders are irreflexive: no value is preferred to itself.
    """

    def __init__(self, value):
        super().__init__(f"reflexive preference tuple ({value!r}, {value!r}) "
                         "violates irreflexivity")
        self.value = value


class UnknownAttributeError(ReproError):
    """An object or query referenced an attribute with no preference order."""

    def __init__(self, attribute, known):
        super().__init__(
            f"unknown attribute {attribute!r}; preferences are defined on "
            f"{sorted(map(str, known))}")
        self.attribute = attribute
        self.known = frozenset(known)


class SchemaMismatchError(ReproError):
    """An object's attribute set does not match the dataset schema.

    *message* overrides the attribute-set wording for mismatches better
    described differently (e.g. a batch row of the wrong width).
    """

    def __init__(self, expected, actual, message: str | None = None):
        super().__init__(
            message if message is not None else
            f"object attributes {sorted(map(str, actual))} do not match the "
            f"schema {sorted(map(str, expected))}")
        self.expected = frozenset(expected)
        self.actual = frozenset(actual)


class EmptyClusterError(ReproError):
    """A cluster operation was attempted on an empty user set."""


class WindowError(ReproError):
    """Invalid sliding-window configuration (e.g. non-positive size)."""


class ThresholdError(ReproError):
    """Invalid approximation thresholds theta1/theta2 (Definition 6.1)."""
