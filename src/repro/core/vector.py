"""Vector dominance kernel: columnar frontiers + numpy block decisions.

The compiled kernel (:mod:`repro.core.compiled`) already reduced a pair
verdict to ``d`` byte-table lookups, but the generated scan loops still
execute one Python iteration per frontier member.  This module keeps the
same interned code space and the same shared outcome tables and replaces
the loop with array arithmetic:

* :class:`ColumnBlock` mirrors a container's ``_codes`` list as one
  contiguous small-int numpy row per attribute (a ``(width, capacity)``
  matrix), with capacity-doubling growth mirroring the compiled kernel's
  padded-table growth.  Frontiers and buffers append/delete through it in
  lockstep with their member lists, so a scan never converts Python
  tuples on the hot path.
* :class:`VectorKernel` concatenates the per-attribute outcome tables
  into one flat byte array and decides a whole scan in a handful of
  numpy ops: one fancy index gathers the two-bit verdicts for every
  (attribute, member) pair at the arriving object's precomputed row
  offsets, a ``bitwise_or`` reduction folds them across attributes, and
  the stop/evict/dominator positions fall out of ``flatnonzero`` —
  better/worse/equal masks reduced across attributes, then reduced
  across members.  Attributes past
  :data:`~repro.core.compiled.TABLE_DOMAIN_LIMIT` carry no byte table;
  their verdict row is reconstructed from the compiled bitmask rows
  (``int.to_bytes`` → per-member bit extraction), so huge domains stay
  off the per-pair path here too.
* :meth:`VectorKernel.block_dominated` is the batch sieve's block path:
  one ``tested × reps`` verdict matrix per distinct order tuple replaces
  per-representative window scans (see :func:`repro.core.batch.batch_sieve`).

Semantics are byte-identical to the compiled and interpreted kernels —
same admissions, evictions, stop positions and notifications — because
the vector scans replay the sequential scan contract exactly: the first
member with an even verdict (identical or dominating) is the stop, and
evictions are the strictly-preceding members the newcomer beats.  Only
the *comparison accounting* differs, by design: a block decision charges
``rows × members`` regardless of where a sequential scan would have
stopped (the vector-equivalent count, DESIGN.md §13).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.compiled import (_A_WINS, _B_WINS, _EQ, _INCOMPARABLE,
                                 CompiledKernel, DomainCodec, OrderRegistry)
from repro.core.errors import ReproError
from repro.core.partial_order import PartialOrder
from repro.data.objects import Object

#: Initial per-attribute column capacity; doubles on overflow.
INITIAL_CAPACITY = 16

#: Row-offset cache entries kept per kernel before a wholesale clear
#: (matches the spirit of the verdict memo's bound; entries are tiny —
#: one ``(width, 1)`` intp array per distinct arriving code tuple).
_ROW_CACHE_LIMIT = 1 << 16


class ColumnBlock:
    """Columnar mirror of a container's encoded members.

    One ``(width, capacity)`` matrix of member codes, row ``k`` being the
    contiguous column for attribute ``k``.  The owning frontier/buffer
    mutates it in lockstep with its parallel ``members``/``_codes``
    lists: :meth:`append` on admit, :meth:`delete` on eviction/expiry,
    :meth:`clear` on reset.  Capacity doubles on overflow so appends stay
    amortised O(width).
    """

    __slots__ = ("width", "capacity", "length", "_data")

    def __init__(self, width: int, capacity: int = INITIAL_CAPACITY):
        self.width = width
        self.capacity = capacity
        self.length = 0
        self._data = np.empty((width, capacity), dtype=np.intp)

    def append(self, codes: Sequence[int]) -> None:
        """Append one member's codes (grows the columns if full)."""
        if self.length == self.capacity:
            grown = np.empty((self.width, self.capacity * 2), dtype=np.intp)
            grown[:, :self.length] = self._data[:, :self.length]
            self._data = grown
            self.capacity *= 2
        self._data[:, self.length] = codes
        self.length += 1

    def extend(self, rows: Sequence[Sequence[int]]) -> None:
        """Append many members' code rows in one transpose-copy.

        The wire plane's bulk-install fast path: a shard adopting a
        relocated frontier (or decoding a code-row frame) lands all its
        rows with one capacity check and one C-level assignment instead
        of per-row :meth:`append` calls.
        """
        count = len(rows)
        if not count:
            return
        needed = self.length + count
        if needed > self.capacity:
            capacity = self.capacity
            while capacity < needed:
                capacity *= 2
            grown = np.empty((self.width, capacity), dtype=np.intp)
            grown[:, :self.length] = self._data[:, :self.length]
            self._data = grown
            self.capacity = capacity
        self._data[:, self.length:needed] = np.asarray(
            rows, dtype=np.intp).T
        self.length = needed

    def delete(self, indices: Sequence[int]) -> None:
        """Drop the members at *indices* (ascending), compacting in place.

        Small batches — the overwhelmingly common case — shift the tail
        left once per index (a C-level copy; numpy buffers overlapping
        slice assignments); large batches fall back to one boolean-mask
        rebuild.
        """
        count = len(indices)
        if not count:
            return
        if count <= 8:
            data = self._data
            for offset, i in enumerate(indices):
                end = self.length - offset
                data[:, i - offset:end - 1] = data[:, i + 1 - offset:end]
            self.length -= count
            return
        keep = np.ones(self.length, dtype=bool)
        keep[list(indices)] = False
        kept = self._data[:, :self.length][:, keep]
        self.length = kept.shape[1]
        self._data[:, :self.length] = kept

    def clear(self) -> None:
        self.length = 0

    def view(self, start: int = 0) -> np.ndarray:
        """The live ``(width, length - start)`` code matrix (a view)."""
        return self._data[:, start:self.length]

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return (f"ColumnBlock({self.width} attributes, {self.length} "
                f"members, capacity {self.capacity})")


class VectorKernel(CompiledKernel):
    """The compiled kernel with numpy block scans over columnar members.

    Subclasses :class:`CompiledKernel`, so it shares the codec, the
    registry dedup, the per-order-tuple verdict memo and the compiled
    orders (tables are reused zero-copy through ``np.frombuffer``); only
    the scan loops are replaced.  Containers holding a vector kernel
    allocate a :class:`ColumnBlock` through :meth:`new_columns` and pass
    it back into every scan; scans fall back to building the matrix from
    ``member_codes`` when no columns are supplied, so the kernel is also
    usable stand-alone.
    """

    __slots__ = ("_np_combined", "_np_bases", "_np_caps", "_np_t_idx",
                 "_plain_attrs", "_all_tables", "_row_cache")

    #: Containers probe this to allocate columnar mirrors and the batch
    #: sieve to select its block path.
    columnar = True

    def new_columns(self) -> ColumnBlock:
        """A fresh columnar mirror for a container scanning through
        this kernel (one row per schema attribute)."""
        return ColumnBlock(len(self.orders))

    def _refresh(self) -> None:
        before = getattr(self, "_tables", None)
        super()._refresh()
        tables = self._tables
        # Codec version bumps are frequent (every newly interned value);
        # recompiles are not (capacities grow in doubling steps).  When no
        # order actually recompiled, every table object — and hence every
        # byte of the concatenated layout and every cached row offset —
        # is unchanged: keep them.
        if (before is not None and len(before) == len(tables)
                and all(a is b for a, b in zip(before, tables))):
            return
        capacities = self._capacities
        table_attrs = [k for k, t in enumerate(tables) if t is not None]
        self._plain_attrs = tuple(k for k, t in enumerate(tables)
                                  if t is None)
        self._all_tables = len(table_attrs) == len(tables)
        bases = []
        parts = []
        offset = 0
        for k in table_attrs:
            bases.append(offset)
            parts.append(np.frombuffer(tables[k], dtype=np.uint8))
            offset += capacities[k] * capacities[k]
        self._np_combined = (np.concatenate(parts) if parts
                             else np.zeros(0, dtype=np.uint8))
        self._np_bases = np.array(bases, dtype=np.intp)
        self._np_caps = np.array([capacities[k] for k in table_attrs],
                                 dtype=np.intp)
        self._np_t_idx = np.array(table_attrs, dtype=np.intp)
        #: codes tuple → its precomputed ``(width, 1)`` row-offset column
        #: into the concatenated table.  Hot streams revisit few distinct
        #: value tuples, so caching skips the offset arithmetic (three
        #: numpy dispatches) on nearly every scan.  Offsets embed table
        #: bases and capacities, so any recompile invalidates wholesale.
        self._row_cache = {}

    # -- verdict rows / blocks -------------------------------------------

    def _plain_term(self, k: int, code: int, column: np.ndarray,
                    ) -> np.ndarray:
        """Verdict row for a tableless (huge-domain) attribute: the two
        dominance bits come from the compiled bitmask rows, equality from
        an explicit code comparison — same decision as the generated
        scan's bitmask term."""
        nbytes = (self._capacities[k] + 7) >> 3
        greater = np.frombuffer(
            self._betters[k][code].to_bytes(nbytes, "little"),
            dtype=np.uint8)
        lesser = np.frombuffer(
            self._worses[k][code].to_bytes(nbytes, "little"),
            dtype=np.uint8)
        g_bit = (greater[column >> 3] >> (column & 7)) & 1
        l_bit = (lesser[column >> 3] >> (column & 7)) & 1
        term = (_INCOMPARABLE ^ (g_bit << 1) ^ l_bit).astype(np.uint8)
        term[column == code] = _EQ
        return term

    def _acc_row(self, codes: Sequence[int], view: np.ndarray,
                 ) -> np.ndarray:
        """Accumulated two-bit verdicts of *codes* against every member
        column in *view* — the vectorised twin of the generated scans'
        ``acc`` expression."""
        if not self.orders:
            return np.zeros(view.shape[1], dtype=np.uint8)
        if self._all_tables:
            key = codes if type(codes) is tuple else tuple(codes)
            offsets = self._row_cache.get(key)
            if offsets is None:
                offsets = (self._np_bases
                           + np.array(key, dtype=np.intp)
                           * self._np_caps)[:, None]
                if len(self._row_cache) >= _ROW_CACHE_LIMIT:
                    self._row_cache.clear()
                self._row_cache[key] = offsets
            return np.bitwise_or.reduce(
                self._np_combined[offsets + view], axis=0)
        acc = None
        if self._np_t_idx.size:
            selected = np.array(codes, dtype=np.intp)[self._np_t_idx]
            offsets = self._np_bases + selected * self._np_caps
            acc = np.bitwise_or.reduce(
                self._np_combined[offsets[:, None] + view[self._np_t_idx]],
                axis=0)
        for k in self._plain_attrs:
            term = self._plain_term(k, codes[k], view[k])
            acc = term if acc is None else acc | term
        return acc

    def _member_view(self, member_codes, columns: ColumnBlock | None,
                     start: int = 0) -> np.ndarray:
        """The member code matrix for a scan: the container's columnar
        mirror when supplied (after checking it is in lockstep with the
        member list), else built from the code tuples."""
        if columns is not None:
            if columns.length != len(member_codes):
                raise ReproError(
                    f"columnar mirror out of step: {columns.length} "
                    f"columns for {len(member_codes)} members")
            return columns.view(start)
        rows = member_codes[start:] if start else member_codes
        matrix = np.array(rows, dtype=np.intp)
        if matrix.ndim == 1:  # width-0 schema: (n,) of empty tuples
            matrix = matrix.reshape(len(rows), 0)
        return matrix.T

    # -- fused scan loops ------------------------------------------------
    #
    # Same results as the sequential scans — stop at the first member
    # with an even verdict, evictions strictly before the stop — but the
    # whole block is classified at once, so `scanned` is always the full
    # member count (the vector-equivalent charge, DESIGN.md §13).

    def scan_add(self, obj: Object, codes, members, member_codes,
                 columns: ColumnBlock | None = None):
        """Algorithm 1's insert scan, decided in one block; returns
        ``(is_pareto, evicted_reads, scan_end, scanned)``."""
        if codes is None:
            codes = self.codec.encode(obj.values)
        if self._version != self.codec.version:
            self._refresh()
        n = len(member_codes)
        if not n:
            return True, [], 0, 0
        if columns is not None:
            if columns.length != n:
                raise ReproError(
                    f"columnar mirror out of step: {columns.length} "
                    f"columns for {n} members")
            view = columns._data[:, :n]
        else:
            view = self._member_view(member_codes, None)
        acc = self._acc_row(codes, view)
        # ``bytes.find`` scans at C speed with none of the ufunc dispatch
        # overhead, and most scans end all-incomparable: locate the stop
        # (first even verdict) and the first win cheaply, and only build
        # an index array when evictions actually exist.
        blob = acc.tobytes()
        identical = blob.find(_EQ)
        beaten = blob.find(_B_WINS)
        if identical < 0:
            stop = beaten
        elif beaten < 0 or identical < beaten:
            stop = identical
        else:
            stop = beaten
        win = blob.find(_A_WINS)
        if stop < 0:
            if win < 0:
                return True, [], n, n
            return True, np.flatnonzero(acc == _A_WINS).tolist(), n, n
        if win < 0 or win >= stop:
            return blob[stop] != _B_WINS, [], stop, n
        evicted = np.flatnonzero(acc[:stop] == _A_WINS).tolist()
        return blob[stop] != _B_WINS, evicted, stop, n

    def any_dominator(self, obj: Object, codes, members, member_codes,
                      columns: ColumnBlock | None = None):
        """``(dominated?, scanned)``: does any member dominate *obj*?"""
        if codes is None:
            codes = self.codec.encode(obj.values)
        if self._version != self.codec.version:
            self._refresh()
        n = len(member_codes)
        if not n:
            return False, 0
        if columns is not None:
            if columns.length != n:
                raise ReproError(
                    f"columnar mirror out of step: {columns.length} "
                    f"columns for {n} members")
            view = columns._data[:, :n]
        else:
            view = self._member_view(member_codes, None)
        acc = self._acc_row(codes, view)
        return acc.tobytes().find(_B_WINS) >= 0, n

    def dominated_indices(self, obj: Object, codes, members, member_codes,
                          columns: ColumnBlock | None = None,
                          start: int = 0):
        """``(indices, scanned)``: members past *start* that *obj*
        dominates, as offsets relative to *start*."""
        if codes is None:
            codes = self.codec.encode(obj.values)
        if self._version != self.codec.version:
            self._refresh()
        total = len(member_codes)
        n = total - start
        if n <= 0:
            return [], 0
        if columns is not None:
            if columns.length != total:
                raise ReproError(
                    f"columnar mirror out of step: {columns.length} "
                    f"columns for {total} members")
            view = columns._data[:, start:total]
        else:
            view = self._member_view(member_codes, None, start)
        acc = self._acc_row(codes, view)
        if acc.tobytes().find(_A_WINS) < 0:
            return [], n
        return np.flatnonzero(acc == _A_WINS).tolist(), n

    # -- batch sieve block path ------------------------------------------

    def block_dominated(self, rep_codes: Sequence[tuple[int, ...]],
                        tested: Sequence[int],
                        ) -> tuple[list[bool], int]:
        """Sieve verdicts for a whole batch: for each position in
        *tested*, is that representative dominated by any
        earlier-arriving representative in *rep_codes*?

        Returns ``(verdicts, charged)`` where *charged* is the
        vector-equivalent comparison count ``len(tested) × len(rep_codes)``
        (zero when the block is trivially undominated).
        """
        if self._version != self.codec.version:
            self._refresh()
        reps = len(rep_codes)
        rows = len(tested)
        if not rows or reps < 2:
            return [False] * rows, 0
        columns = np.array(rep_codes, dtype=np.intp)
        if columns.ndim == 1:  # width-0 schema: (n,) of empty tuples
            columns = columns.reshape(reps, 0)
        columns = columns.T
        positions = np.array(tested, dtype=np.intp)
        acc = self._acc_block(columns[:, positions], columns, rows, reps)
        dominated = (acc == _B_WINS) \
            & (np.arange(reps)[None, :] < positions[:, None])
        return dominated.any(axis=1).tolist(), rows * reps

    def _acc_block(self, row_codes: np.ndarray, column_codes: np.ndarray,
                   rows: int, reps: int) -> np.ndarray:
        """Accumulated verdicts of every row object against every column
        member: a ``(rows, reps)`` matrix, OR-folded across attributes
        one attribute at a time (bounding scratch memory to the block)."""
        if not self.orders:
            return np.zeros((rows, reps), dtype=np.uint8)
        acc = None
        if self._np_t_idx.size:
            selected = row_codes[self._np_t_idx]
            offsets = (self._np_bases[:, None]
                       + selected * self._np_caps[:, None])
            column_sel = column_codes[self._np_t_idx]
            for k in range(offsets.shape[0]):
                term = self._np_combined[
                    offsets[k][:, None] + column_sel[k][None, :]]
                if acc is None:
                    acc = term
                else:
                    acc |= term
        for k in self._plain_attrs:
            block = np.empty((rows, reps), dtype=np.uint8)
            attr_rows = row_codes[k]
            attr_columns = column_codes[k]
            for t in range(rows):
                block[t] = self._plain_term(k, int(attr_rows[t]),
                                            attr_columns)
            acc = block if acc is None else acc | block
        return acc

    def __repr__(self) -> str:
        domains = tuple(self.codec.size(i)
                        for i in range(len(self.orders)))
        return (f"VectorKernel({len(self.orders)} attributes, "
                f"domains {domains})")


def vector_kernel(orders: Sequence[PartialOrder], codec: DomainCodec,
                  registry: OrderRegistry | None = None) -> VectorKernel:
    """Convenience constructor mirroring
    :func:`~repro.core.compiled.make_kernel` for callers that already
    know they want the vector flavour."""
    if registry is not None:
        return registry.kernel(orders)
    return VectorKernel(orders, codec)
