"""MonitorService: the subscription-lifecycle façade over the monitors.

The paper's setting is a *continuous dissemination service*: objects
stream in forever while users subscribe, change their tastes and leave.
The monitor classes freeze the user base at construction; this module
provides the long-lived surface on top of them:

>>> from repro import MonitorService, PartialOrder, Preference
>>> service = MonitorService(schema=("brand", "cpu"))
>>> alice = Preference({"brand": PartialOrder.from_edges(
...     [("Apple", "Samsung")])})
>>> service.subscribe("alice", alice)
>>> events = service.feed([("Samsung", "dual"), ("Apple", "dual")])
>>> [(event.user, event.oid) for event in events]
[('alice', 0), ('alice', 1)]

Construct the service once from a schema plus a :class:`ServicePolicy`
(shared / approximate / window / kernel / memo — the same axes as
:func:`~repro.core.monitor.create_monitor`), then drive it with
:meth:`~MonitorService.subscribe`, :meth:`~MonitorService.unsubscribe`,
:meth:`~MonitorService.update_preference` and
:meth:`~MonitorService.feed`.  Deliveries are :class:`Notification`
events pushed to *sinks* — any callable taking one notification —
registered service-wide (:meth:`~MonitorService.deliver_to`) or per user
(``subscribe(..., sink=...)``).

Lifecycle semantics (differential contract)
-------------------------------------------

Every lifecycle operation leaves the service equivalent to a monitor
rebuilt from scratch with the surviving subscriptions (and the service's
current cluster assignment) and the full replayed feed — per-user
frontiers, buffers and all subsequent notifications match exactly
(pinned by ``tests/test_service.py``).  To make that exact for
append-only policies the service retains the feed log (every arrival is
a live competitor forever under Definition 3.3); windowed policies only
ever need the alive window, which the monitor already holds — the
natural configuration for an unbounded deployment.

Cluster assignment under churn is incremental: a subscriber joins the
best-matching existing cluster when the Section 5 similarity reaches the
policy's ``h`` (that one cluster is rebuilt under the updated virtual
preference), and opens a singleton cluster otherwise; unsubscribing
keeps the remaining cluster's virtual as a sound, conservative sieve.
Compiled kernels are refcounted through the monitor's
:class:`~repro.core.compiled.OrderRegistry`, so departed tastes free
their compiled state.

Snapshots (:meth:`~MonitorService.save` / :meth:`~MonitorService.load`)
use the self-contained format v2 of :mod:`repro.state`: preferences,
cluster assignment and the replay objects travel in one file, so a
restart needs no caller-side plumbing.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import asdict, dataclass, replace

from repro.core.baseline import Baseline, MonitorBase
from repro.core.clusters import Cluster, UserId
from repro.core.errors import ReproError
from repro.core.filter_verify import (DEFAULT_THETA1, DEFAULT_THETA2,
                                      FilterThenVerify,
                                      FilterThenVerifyApprox)
from repro.core.preference import Preference
from repro.core.sliding import (BaselineSW, FilterThenVerifyApproxSW,
                                FilterThenVerifySW)
from repro.data.objects import Object, Schema


@dataclass(frozen=True)
class Notification:
    """One delivery event: *obj* is Pareto-optimal for *user* on arrival.

    The event form of what :meth:`MonitorBase.push` returns as a user
    set — one notification per (target user, arrival), dispatched to the
    registered sinks and returned by :meth:`MonitorService.feed`.
    """

    user: UserId
    obj: Object

    @property
    def oid(self) -> int:
        """The delivered object's id."""
        return self.obj.oid

    @property
    def values(self) -> tuple:
        """The delivered object's schema-aligned value tuple."""
        return self.obj.values


#: A delivery sink: any callable taking one :class:`Notification`.
Sink = Callable[[Notification], None]


@dataclass(frozen=True)
class ServicePolicy:
    """Construction-time policy of a monitor or service.

    The same axes :func:`~repro.core.monitor.create_monitor` always
    took, packaged so they can be carried by a
    :class:`MonitorService`, embedded in format-v2 snapshots and reused
    for rebuild-and-replay oracles.
    """

    shared: bool = True
    approximate: bool = False
    window: int | None = None
    h: float = 0.55
    measure: str | None = None
    theta1: float = DEFAULT_THETA1
    theta2: float = DEFAULT_THETA2
    track_targets: bool = False
    #: Dominance kernel, one of :data:`~repro.core.compiled.KERNELS`
    #: ("compiled", "vector", "interpreted"): the interned bitset-matrix
    #: scans, their columnar numpy block flavour, or the pure-Python
    #: reference.  All return byte-identical notifications, frontiers
    #: and buffers; the vector kernel charges vector-equivalent
    #: comparison counts (DESIGN.md §13).
    kernel: str = "compiled"
    memo: bool = True
    #: Shard count for the sharded ingest plane (DESIGN.md §12).  With
    #: ``workers=1`` (the default) builds return the classic serial
    #: monitors; with more, a :class:`~repro.core.shard.ShardedMonitor`
    #: partitions the scope set deterministically and drives it through
    #: *executor* with byte-identical notifications, frontiers and
    #: buffers.
    workers: int = 1
    #: ``"serial"`` (the reference), ``"threads"`` or ``"processes"``.
    executor: str = "serial"

    def __post_init__(self):
        if self.approximate and not self.shared:
            raise ValueError("approximate=True requires shared=True "
                             "(approximation lives in the cluster sieve)")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        from repro.core.compiled import validate_kernel
        from repro.core.shard import validate_executor

        validate_kernel(self.kernel)
        validate_executor(self.executor)

    def base(self) -> "ServicePolicy":
        """This policy with sharding stripped — the per-shard
        sub-monitor recipe (and the serial reference the sharded plane
        is differentially tested against)."""
        if self.workers == 1 and self.executor == "serial":
            return self
        return replace(self, workers=1, executor="serial")

    def resolved_measure(self) -> str:
        """The similarity measure, defaulted per the paper: weighted
        Jaccard for exact sharing, its frequency-vector variant for
        approximate sharing."""
        if self.measure is not None:
            return self.measure
        return ("approx_weighted_jaccard" if self.approximate
                else "weighted_jaccard")

    def to_dict(self) -> dict:
        """Plain-data form (embedded in format-v2 snapshots)."""
        return asdict(self)

    # ------------------------------------------------------------------
    # Monitor construction
    # ------------------------------------------------------------------

    def build(self, preferences: Mapping[UserId, Preference],
              schema: Sequence[str]) -> MonitorBase:
        """Build the appropriate monitor for a (possibly empty) user
        base, clustering with the Section 5 pipeline when sharing is
        requested — the classic one-shot construction path.  With
        ``workers > 1`` the result is a
        :class:`~repro.core.shard.ShardedMonitor` over per-shard
        monitors of the same family."""
        if not self.shared:
            if self.workers > 1:
                from repro.core.shard import ShardedMonitor

                return ShardedMonitor(self, schema,
                                      preferences=dict(preferences))
            if self.window is None:
                return Baseline(preferences, schema, self.track_targets,
                                self.kernel, self.memo)
            return BaselineSW(preferences, schema, self.window,
                              self.track_targets, self.kernel, self.memo)
        clusters: list[Cluster] = []
        if preferences:
            from repro.clustering.hierarchical import cluster_users

            groups = cluster_users(preferences, h=self.h,
                                   measure=self.resolved_measure())
            if self.approximate:
                clusters = [Cluster.approximate(group, self.theta1,
                                                self.theta2)
                            for group in groups]
            else:
                clusters = [Cluster.exact(group) for group in groups]
        return self.build_from_clusters(clusters, schema)

    def build_from_clusters(self, clusters: Sequence[Cluster],
                            schema: Sequence[str]) -> MonitorBase:
        """Build a shared-family monitor over prepared clusters —
        restore paths and rebuild oracles use this to reproduce an
        exact cluster assignment instead of re-clustering."""
        if not self.shared:
            raise ReproError("cluster construction requires shared=True")
        if self.workers > 1:
            from repro.core.shard import ShardedMonitor

            return ShardedMonitor(self, schema, clusters=list(clusters))
        if self.window is None:
            factory = (FilterThenVerifyApprox if self.approximate
                       else FilterThenVerify)
            return factory(clusters, schema, self.track_targets,
                           self.kernel, self.memo)
        factory = (FilterThenVerifyApproxSW if self.approximate
                   else FilterThenVerifySW)
        return factory(clusters, schema, self.window, self.track_targets,
                       self.kernel, self.memo)


class MonitorService:
    """A long-lived dissemination service with dynamic subscriptions.

    See the module docstring for the surface and semantics.  Keyword
    arguments mirror :class:`ServicePolicy` (pass ``policy=`` to reuse
    one); the service starts empty and subscriptions churn freely while
    objects keep streaming through :meth:`feed`.
    """

    def __init__(self, schema: Sequence[str], *,
                 policy: ServicePolicy | None = None, shared: bool = True,
                 approximate: bool = False, window: int | None = None,
                 h: float = 0.55, measure: str | None = None,
                 theta1: float = DEFAULT_THETA1,
                 theta2: float = DEFAULT_THETA2,
                 track_targets: bool = False, kernel: str = "compiled",
                 memo: bool = True, workers: int = 1,
                 executor: str = "serial"):
        if policy is None:
            policy = ServicePolicy(
                shared=shared, approximate=approximate, window=window,
                h=h, measure=measure, theta1=theta1, theta2=theta2,
                track_targets=track_targets, kernel=kernel, memo=memo,
                workers=workers, executor=executor)
        self.policy = policy
        self.schema: Schema = tuple(schema)
        self._monitor = policy.build({}, self.schema)
        self._preferences: dict[UserId, Preference] = {}
        #: Retained feed log (append-only policies): the full competitor
        #: set any future subscriber must be measured against.  Windowed
        #: policies keep nothing here — the monitor's alive window is
        #: the whole relevant history.
        self._history: list[Object] = []
        self._sinks: list[Sink] = []
        self._user_sinks: dict[UserId, Sink] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def monitor(self) -> MonitorBase:
        """The underlying monitor (one of the six families)."""
        return self._monitor

    @property
    def stats(self):
        """The monitor's work counters (objects, deliveries,
        comparisons)."""
        return self._monitor.stats

    @property
    def users(self) -> tuple[UserId, ...]:
        """Currently subscribed user ids (subscription order)."""
        return tuple(self._preferences)

    @property
    def preferences(self) -> dict[UserId, Preference]:
        """Current user → preference mapping (a copy; safe to mutate)."""
        return dict(self._preferences)

    @property
    def clusters(self) -> tuple[Cluster, ...]:
        """Current cluster assignment (empty for per-user policies)."""
        if self.policy.shared:
            return self._monitor.clusters
        return ()

    @property
    def history(self) -> tuple[Object, ...]:
        """The retained feed log (append-only policies only)."""
        return tuple(self._history)

    def frontier(self, user: UserId) -> tuple[Object, ...]:
        """Current Pareto frontier ``P_c`` of *user*, in arrival order."""
        return self._monitor.frontier(user)

    def frontier_ids(self, user: UserId) -> frozenset[int]:
        """Object ids of ``P_c``."""
        return self._monitor.frontier_ids(user)

    def targets_of(self, oid: int) -> frozenset[UserId]:
        """Current ``C_o`` of a past object (requires
        ``track_targets=True`` in the policy)."""
        return self._monitor.targets_of(oid)

    def __len__(self) -> int:
        return len(self._preferences)

    def __contains__(self, user: UserId) -> bool:
        return user in self._preferences

    def __repr__(self) -> str:
        kind = type(self._monitor).__name__
        return (f"MonitorService({len(self._preferences)} subscribers, "
                f"{kind}, {self._monitor.stats.objects} objects seen)")

    # ------------------------------------------------------------------
    # Subscription lifecycle
    # ------------------------------------------------------------------

    def subscribe(self, user: UserId, preference: Preference, *,
                  sink: Sink | None = None) -> None:
        """Add a subscriber mid-stream.

        Under a shared policy the newcomer joins the best-matching
        existing cluster (Section 5 similarity at the policy's ``h``) or
        opens a singleton; the spliced state competes over the retained
        history (append-only) or the alive window, so the subscriber is
        indistinguishable from one present since construction.  An
        optional *sink* receives this user's notifications.
        """
        if user in self._preferences:
            raise ValueError(f"user {user!r} is already subscribed")
        policy = self.policy
        if policy.shared:
            kwargs = dict(h=policy.h, measure=policy.resolved_measure(),
                          theta1=policy.theta1, theta2=policy.theta2)
            if policy.window is None:
                self._monitor.add_user(user, preference,
                                       history=self._history, **kwargs)
            else:
                self._monitor.add_user(user, preference, **kwargs)
        elif policy.window is None:
            self._monitor.add_user(user, preference,
                                   history=self._history)
        else:
            self._monitor.add_user(user, preference)
        self._preferences[user] = preference
        if sink is not None:
            self._user_sinks[user] = sink

    def unsubscribe(self, user: UserId) -> None:
        """Drop a subscriber: frontier state, target-set entries, kernel
        refcounts and any per-user sink go with them."""
        if user not in self._preferences:
            raise ValueError(f"user {user!r} is not subscribed")
        self._monitor.remove_user(user)
        del self._preferences[user]
        self._user_sinks.pop(user, None)

    def update_preference(self, user: UserId,
                          preference: Preference) -> None:
        """Replace a subscriber's taste mid-stream.

        Semantically unsubscribe + subscribe: the user may land in a
        different cluster, and their rebuilt state reflects the new
        preference over the full retained history (or alive window).
        The per-user sink survives the update.  If the new preference
        cannot be subscribed (e.g. it is not a
        :class:`~repro.core.preference.Preference`), the old
        subscription is reinstated before the error propagates — an
        update never silently drops a subscriber.
        """
        if user not in self._preferences:
            raise ValueError(f"user {user!r} is not subscribed")
        previous = self._preferences[user]
        sink = self._user_sinks.get(user)
        self.unsubscribe(user)
        try:
            self.subscribe(user, preference, sink=sink)
        except Exception:
            self.subscribe(user, previous, sink=sink)
            raise

    def rebalance(self, force: bool = False) -> int:
        """Even out shard load by moving signature groups between
        shards (sharded policies; see DESIGN.md §14).  Moves transfer
        frontier state verbatim, so notifications and counts are
        unaffected.  Returns the number of groups moved — always 0 for
        serial policies, which have nothing to move."""
        rebalance = getattr(self._monitor, "rebalance", None)
        if rebalance is None:
            return 0
        return rebalance(force=force)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def deliver_to(self, sink: Sink) -> Sink:
        """Register a service-wide sink; returns it (a handle for
        :meth:`stop_delivering`)."""
        self._sinks.append(sink)
        return sink

    def stop_delivering(self, sink: Sink) -> None:
        """Unregister a service-wide sink registered via
        :meth:`deliver_to`."""
        self._sinks.remove(sink)

    def feed(self, rows) -> list[Notification]:
        """Ingest a batch of arrivals; dispatch and return notifications.

        *rows* is a sequence of arrivals (value sequences, mappings or
        ready :class:`~repro.data.objects.Object` instances — anything
        the arrival plane coerces).  Per-arrival notifications are
        dispatched to the target user's sink (if any) and to every
        service-wide sink, in arrival order with users ordered by
        ``repr`` for determinism, and returned as a list.
        """
        if isinstance(rows, Mapping):
            raise TypeError("feed() takes a sequence of rows; wrap a "
                            "single mapping row as feed([row])")
        monitor = self._monitor
        objects = [monitor.ingest.coerce(row) for row in rows]
        results = monitor.push_batch(objects)
        if self.policy.window is None:
            self._history.extend(objects)
        notifications: list[Notification] = []
        user_sinks = self._user_sinks
        # Snapshot the service-wide sink list: a sink callback may
        # register or unregister sinks mid-dispatch (the serving plane
        # opens/closes streams from inside the event loop), and
        # mutating the live list while iterating it would skip or
        # double-deliver.
        sinks = tuple(self._sinks)
        for obj, targets in zip(objects, results):
            for user in sorted(targets, key=repr):
                event = Notification(user, obj)
                notifications.append(event)
                sink = user_sinks.get(user)
                if sink is not None:
                    sink(event)
                for service_sink in sinks:
                    service_sink(event)
        return notifications

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drain sinks and release executor resources.

        Idempotent — the serving plane calls it from signal handlers,
        ``POST /shutdown`` *and* context exit, and any of those may
        race another, so a second (or third) call must be a no-op.
        Two steps, in order:

        1. every registered sink exposing an ``on_drain()`` hook is
           told to drain (the serving plane's notification hub closes
           its client queues here, ending the SSE streams);
        2. a sharded monitor's executor resources (worker processes,
           thread pools) are released — a no-op for serial policies.

        The service remains usable for in-process calls afterwards
        under serial policies; sharded monitors are done once closed.
        """
        if self._closed:
            return
        self._closed = True
        for sink in (tuple(self._sinks)
                     + tuple(self._user_sinks.values())):
            hook = getattr(sink, "on_drain", None)
            if hook is not None:
                hook()
        close = getattr(self._monitor, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "MonitorService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Persistence (format v2, self-contained)
    # ------------------------------------------------------------------

    def save(self, fp) -> None:
        """Write a self-contained snapshot (path or open text file):
        policy, preferences, cluster assignment and replay objects."""
        from repro import state

        state.save_service_snapshot(self, fp)

    @classmethod
    def load(cls, fp) -> "MonitorService":
        """Rebuild a service from a :meth:`save` snapshot — no
        caller-side preference or cluster plumbing needed.  Sinks are
        runtime callables and do not survive the round trip; re-register
        them after loading.  User ids come back as strings (JSON object
        keys, exactly like :func:`repro.io.preferences_to_dict`) — use
        string ids from the start if you plan to persist."""
        from repro import state

        return state.restore_service(state.load_snapshot(fp))

    # ------------------------------------------------------------------
    # Restore plumbing (used by repro.state; not part of the public API)
    # ------------------------------------------------------------------

    def _adopt(self, preferences: Mapping[UserId, Preference],
               clusters: Sequence[Cluster] | None = None) -> None:
        """Install a user base wholesale, preserving an exact cluster
        assignment instead of re-running incremental placement."""
        if self._preferences or self._monitor.stats.objects:
            raise ReproError("_adopt requires a fresh service")
        close = getattr(self._monitor, "close", None)
        if close is not None:
            close()
        if clusters is not None:
            self._monitor = self.policy.build_from_clusters(clusters,
                                                            self.schema)
        else:
            self._monitor = self.policy.build(dict(preferences),
                                              self.schema)
        self._preferences = dict(preferences)

    def _replay(self, objects: Sequence[Object]) -> None:
        """Replay snapshot objects through the one ingest pipeline
        (sieve and memo active), reinstating the feed log."""
        self._monitor.push_batch(list(objects))
        if self.policy.window is None:
            self._history = list(objects)
