"""Command line interface: ``python -m repro <command>``.

Five user-facing commands wrap the library for shell use:

* ``demo`` — replay the paper's laptop example (Tables 1/2) end to end;
* ``generate`` — write a synthetic scenario (dataset + preferences) to a
  JSON file: ``python -m repro generate retail -o shop.json``;
* ``inspect`` — print the Hasse diagrams inside a scenario/preferences
  file;
* ``cluster`` — run Section-5 clustering on a file and show the merge
  history and resulting clusters;
* ``monitor`` — stream a scenario's objects through a chosen monitor and
  report deliveries and work counters;
* ``profile`` — measure a scenario's shape (value skew, order density,
  user similarity, frontier growth) to guide ``h``/θ choices;
* ``explain`` — why is object N (not) Pareto-optimal for user U?
* ``serve`` — stand the HTTP/SSE front door up over a MonitorService
  (subscribe/update/unsubscribe/feed endpoints + per-user notification
  streams; DESIGN.md §15);
* ``bench`` — delegate to :mod:`repro.bench` (regenerate paper figures).

Every command reads/writes plain JSON (see :mod:`repro.io`), so scenarios
can be produced by one invocation and consumed by the next.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import IO

from repro import io as repro_io
from repro.core.compiled import KERNELS
from repro.core.errors import ReproError
from repro.core.monitor import create_monitor
from repro.core.shard import EXECUTORS
from repro.viz import hasse_text

#: generate-able scenarios: name -> (module, factory, object/user kwargs).
SCENARIOS = ("movies", "publications", "retail", "social")


def _load_scenario_factory(name: str):
    if name == "movies":
        from repro.data.movies import movie_workload
        return lambda objects, users, seed: movie_workload(
            n_movies=objects, n_users=users, seed=seed)
    if name == "publications":
        from repro.data.publications import publication_workload
        return lambda objects, users, seed: publication_workload(
            n_papers=objects, n_users=users, seed=seed)
    if name == "retail":
        from repro.data.retail import retail_workload
        return lambda objects, users, seed: retail_workload(
            n_products=objects, n_users=users, seed=seed)
    if name == "social":
        from repro.data.social import social_workload
        return lambda objects, users, seed: social_workload(
            n_posts=objects, n_users=users, seed=seed)
    raise ValueError(f"unknown scenario {name!r}")  # pragma: no cover


def _read_preferences(path: str):
    """Accept either a scenario file or a bare preferences file."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if "preferences" in data:
        workload = repro_io.workload_from_dict(data)
        return workload.preferences, workload
    return repro_io.preferences_from_dict(data), None


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------

def cmd_demo(args, out: IO[str]) -> int:
    from repro.data import paper_example as pe

    users = {"c1": pe.c1_preference(), "c2": pe.c2_preference()}
    monitor = create_monitor(users, pe.SCHEMA, shared=not args.baseline,
                             h=0.01)
    print("Streaming the paper's inventory (Table 1) to customers "
          "c1 and c2 (Table 2):\n", file=out)
    for obj in pe.table1_dataset(16):
        targets = monitor.push(obj)
        row = dict(zip(pe.SCHEMA, obj.values))
        label = (", ".join(sorted(map(str, targets)))
                 if targets else "nobody")
        print(f"  o{obj.oid + 1:<3} {str(row):<60} -> {label}", file=out)
    for user in users:
        frontier = sorted(f"o{o.oid + 1}" for o in monitor.frontier(user))
        print(f"\nPareto frontier of {user}: {', '.join(frontier)}",
              file=out)
    print(f"\ntotal comparisons: {monitor.stats.comparisons}", file=out)
    return 0


def cmd_generate(args, out: IO[str]) -> int:
    factory = _load_scenario_factory(args.scenario)
    workload = factory(args.objects, args.users, args.seed)
    repro_io.save_workload(workload, args.output)
    print(f"wrote {workload.name!r}: {len(workload.dataset)} objects, "
          f"{len(workload.preferences)} users -> {args.output}", file=out)
    return 0


def cmd_inspect(args, out: IO[str]) -> int:
    preferences, workload = _read_preferences(args.file)
    if workload is not None:
        print(f"scenario {workload.name!r}: {len(workload.dataset)} "
              f"objects over {workload.schema}", file=out)
    users = [args.user] if args.user else sorted(map(str, preferences))
    missing = [user for user in users if user not in preferences]
    if missing:
        print(f"error: unknown user(s) {', '.join(missing)}; file has "
              f"{len(preferences)} users", file=out)
        return 2
    for user in users:
        preference = preferences[user]
        attributes = ([args.attribute] if args.attribute
                      else sorted(preference.attributes))
        print(f"\n=== {user} ===", file=out)
        for attribute in attributes:
            order = preference.order(attribute)
            print(f"\n[{attribute}] ({len(order)} preference tuples)",
                  file=out)
            print(hasse_text(order), file=out)
    return 0


def cmd_cluster(args, out: IO[str]) -> int:
    from repro.clustering.hierarchical import build_dendrogram

    preferences, _ = _read_preferences(args.file)
    dendrogram = build_dendrogram(preferences, measure=args.measure)
    print(f"{len(preferences)} users, {len(dendrogram.merges)} merges "
          f"(measure: {args.measure})", file=out)
    for index, merge in enumerate(dendrogram.merges):
        mark = " " if merge.similarity >= args.h else "x"
        print(f" {mark} merge {index + 1}: sim={merge.similarity:.4f} "
              f"{sorted(map(str, merge.left))} + "
              f"{sorted(map(str, merge.right))}", file=out)
    clusters = dendrogram.cut(args.h)
    print(f"\nbranch cut h={args.h} -> {len(clusters)} clusters:",
          file=out)
    for cluster in sorted(clusters, key=lambda c: sorted(map(str, c))):
        print(f"  {sorted(map(str, cluster))}", file=out)
    return 0


def _service_error(out: IO[str], message: str) -> int:
    print(json.dumps({"event": "error", "message": message}), file=out)
    return 2


def cmd_monitor_service(args, out: IO[str]) -> int:
    """``monitor --service``: drive a MonitorService from a JSONL
    command stream (the positional file, or ``-`` for stdin).

    The first command must configure the service; thereafter users
    subscribe, update, unsubscribe and objects stream in, one JSON
    object per line::

        {"op": "configure", "schema": ["color", "size"], "window": 100}
        {"op": "subscribe", "user": "u1", "preference": {"color":
            {"hasse": [["red", "blue"]], "isolated": []}}}
        {"op": "push", "row": ["red", "s"]}
        {"op": "push", "rows": [["blue", "m"], ["red", "l"]]}
        {"op": "update", "user": "u1", "preference": {...}}
        {"op": "unsubscribe", "user": "u1"}

    Output is JSONL too: one ``{"event": "notification", ...}`` line per
    delivery, plus a final ``{"event": "summary", ...}`` line.
    Preferences use the :mod:`repro.io` encoding (Hasse edges +
    isolated values).
    """
    from repro.service import MonitorService, ServicePolicy

    handle = sys.stdin if args.file == "-" else open(args.file,
                                                     encoding="utf-8")
    service = None
    notifications = 0
    try:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                command = json.loads(line)
                if not isinstance(command, dict):
                    return _service_error(
                        out, f"line {lineno}: expected a JSON object, "
                             f"got {command!r}")
                op = command.get("op")
                if op == "configure":
                    if service is not None:
                        return _service_error(
                            out, f"line {lineno}: already configured")
                    unknown = set(command) - {
                        "op", "schema", "shared", "approximate",
                        "window", "h", "measure", "theta1", "theta2",
                        "workers", "executor"}
                    if unknown:
                        # A swallowed key would silently run a
                        # different policy than the user asked for.
                        return _service_error(
                            out, f"line {lineno}: unknown configure "
                                 f"key(s) {sorted(unknown)}")
                    policy = ServicePolicy(
                        shared=command.get(
                            "shared", args.algorithm != "baseline"),
                        approximate=command.get(
                            "approximate", args.algorithm == "ftva"),
                        window=command.get("window", args.window),
                        h=command.get("h", args.h),
                        measure=command.get("measure"),
                        theta1=command.get("theta1",
                                           ServicePolicy.theta1),
                        theta2=command.get("theta2", args.theta2),
                        kernel=args.kernel, memo=not args.no_memo,
                        workers=command.get("workers", args.workers),
                        executor=command.get("executor", args.executor))
                    service = MonitorService(command["schema"],
                                             policy=policy)
                    continue
                if service is None:
                    return _service_error(
                        out, f"line {lineno}: first command must be "
                             f"{{\"op\": \"configure\", ...}}")
                if op == "subscribe":
                    service.subscribe(
                        command["user"],
                        repro_io.preference_from_dict(
                            command["preference"]))
                elif op == "update":
                    service.update_preference(
                        command["user"],
                        repro_io.preference_from_dict(
                            command["preference"]))
                elif op == "unsubscribe":
                    service.unsubscribe(command["user"])
                elif op == "push":
                    rows = (command["rows"] if "rows" in command
                            else [command["row"]])
                    for event in service.feed(rows):
                        notifications += 1
                        print(json.dumps({
                            "event": "notification",
                            "user": event.user,
                            "oid": event.oid,
                            "values": list(event.values),
                        }), file=out)
                else:
                    return _service_error(
                        out, f"line {lineno}: unknown op {op!r}")
            except (KeyError, ValueError, TypeError, ReproError) as error:
                # ReproError covers the library's own failure modes
                # (schema mismatches, cycles, ...): the JSONL error
                # contract holds for them too, not just JSON shape
                # problems.
                return _service_error(out, f"line {lineno}: {error}")
    finally:
        if handle is not sys.stdin:
            handle.close()
        if service is not None:
            service.close()   # release sharded-executor resources
    if service is None:
        return _service_error(out, "empty command stream: nothing to do")
    stats = service.stats.snapshot()
    print(json.dumps({
        "event": "summary",
        "objects": stats["objects"],
        "notifications": notifications,
        "users": len(service),
        "comparisons": stats["comparisons"],
    }), file=out)
    return 0


def cmd_monitor(args, out: IO[str]) -> int:
    if args.service:
        return cmd_monitor_service(args, out)
    if args.batch_size is not None and args.batch_size < 1:
        # Fail before paying the workload load and clustering build.
        print(f"error: --batch-size must be >= 1, got {args.batch_size}",
              file=out)
        return 2
    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}",
              file=out)
        return 2
    with open(args.file, encoding="utf-8") as handle:
        workload = repro_io.workload_from_dict(json.load(handle))
    monitor = create_monitor(
        workload.preferences, workload.schema,
        shared=args.algorithm != "baseline",
        approximate=args.algorithm == "ftva",
        window=args.window, h=args.h, theta2=args.theta2,
        kernel=args.kernel, memo=not args.no_memo,
        workers=args.workers, executor=args.executor)
    deliveries = 0

    def report(obj, targets):
        nonlocal deliveries
        deliveries += len(targets)
        if targets and not args.quiet:
            row = dict(zip(workload.schema, obj.values))
            print(f"  {obj.oid:<6} {str(row):<70} -> "
                  f"{len(targets)} users", file=out)

    objects = workload.dataset.objects
    if args.batch_size is None:
        for obj in objects:
            report(obj, monitor.push(obj))
    else:
        # Batched ingest: identical notifications, fewer comparisons
        # on duplicate-heavy streams (intra-batch sieve).
        for cut in range(0, len(objects), args.batch_size):
            chunk = objects[cut:cut + args.batch_size]
            for obj, targets in zip(chunk, monitor.push_batch(chunk)):
                report(obj, targets)
    stats = monitor.stats.snapshot()
    wire_stats = getattr(monitor, "wire_stats", None)
    wire = wire_stats() if wire_stats is not None else None
    close = getattr(monitor, "close", None)
    if close is not None:        # sharded monitors hold executor state
        close()
    print(f"\n{args.algorithm}: {stats['objects']} objects pushed, "
          f"{deliveries} notifications, "
          f"{stats['comparisons']:,} comparisons "
          f"(filter {stats['filter_comparisons']:,} / verify "
          f"{stats['verify_comparisons']:,} / buffer "
          f"{stats['buffer_comparisons']:,})", file=out)
    if wire is not None:
        print(f"wire plane: {wire['encode_passes']:,} encode passes, "
              f"{wire['wire_bytes']:,} bytes shipped, "
              f"{wire['codec_delta_entries']:,} codec delta entries",
              file=out)
    return 0


def cmd_profile(args, out: IO[str]) -> int:
    from repro.data.profile import format_profile, profile_workload

    with open(args.file, encoding="utf-8") as handle:
        workload = repro_io.workload_from_dict(json.load(handle))
    profile = profile_workload(workload, sample_users=args.sample)
    print(format_profile(profile), file=out)
    return 0


def cmd_explain(args, out: IO[str]) -> int:
    from repro.core.explain import explain

    with open(args.file, encoding="utf-8") as handle:
        workload = repro_io.workload_from_dict(json.load(handle))
    if args.user not in workload.preferences:
        print(f"error: unknown user {args.user!r}", file=out)
        return 2
    if not 0 <= args.object < len(workload.dataset):
        print(f"error: object id must be in 0..{len(workload.dataset) - 1}",
              file=out)
        return 2
    obj = workload.dataset[args.object]
    result = explain(workload.preferences[args.user], obj,
                     workload.dataset.objects, workload.schema,
                     user=args.user, max_dominators=args.max_dominators)
    print(result.describe(workload.schema), file=out)
    return 0


def cmd_serve(args, out: IO[str]) -> int:
    """``serve``: stand the HTTP/SSE front door up over a
    MonitorService (DESIGN.md §15).

    The service comes from ``--snapshot`` when that file exists (format
    v2, written back on graceful shutdown) and from ``--schema``
    otherwise.  All policy axes mirror the ``monitor`` command; the
    server prints ``serving on HOST:PORT`` once bound (``--port 0``
    picks an ephemeral port) and a latency/lag summary on drain.
    """
    import os

    from repro.server.lifecycle import run_server
    from repro.server.sinks import validate_policy
    from repro.service import MonitorService, ServicePolicy

    validate_policy(args.policy)
    if args.queue_size < 1:
        print(f"error: --queue-size must be >= 1, got "
              f"{args.queue_size}", file=out)
        return 2
    if args.snapshot and os.path.exists(args.snapshot):
        service = MonitorService.load(args.snapshot)
        print(f"restored {len(service)} subscribers from "
              f"{args.snapshot}", file=out, flush=True)
    else:
        if not args.schema:
            print("error: --schema is required unless --snapshot "
                  "names an existing snapshot", file=out)
            return 2
        schema = [name.strip() for name in args.schema.split(",")
                  if name.strip()]
        policy = ServicePolicy(
            shared=args.algorithm != "baseline",
            approximate=args.algorithm == "ftva",
            window=args.window, h=args.h, theta2=args.theta2,
            kernel=args.kernel, memo=not args.no_memo,
            workers=args.workers, executor=args.executor)
        service = MonitorService(schema, policy=policy)
    return run_server(service, args.host, args.port,
                      queue_size=args.queue_size, policy=args.policy,
                      heartbeat=args.heartbeat,
                      snapshot_path=args.snapshot, out=out)


def cmd_bench(args, out: IO[str]) -> int:
    bench_args = list(args.bench_args)
    # The scale-lab verbs (DESIGN.md §16) get the run-table front door;
    # anything else — legacy experiment ids, --list, --tag — falls
    # through to the python -m repro.bench back-compat alias.
    if bench_args and bench_args[0] in ("list", "run", "report"):
        from repro.bench.lab.cli import lab_main

        return lab_main(bench_args, out=out)
    from repro.bench.__main__ import main as bench_main

    return bench_main(bench_args)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Continuous Pareto-frontier monitoring "
                    "(EDBT 2018 reproduction).")
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser(
        "demo", help="replay the paper's laptop example (Tables 1/2)")
    demo.add_argument("--baseline", action="store_true",
                      help="use the per-user Baseline instead of "
                           "FilterThenVerify")
    demo.set_defaults(func=cmd_demo)

    generate = commands.add_parser(
        "generate", help="write a synthetic scenario to a JSON file")
    generate.add_argument("scenario", choices=SCENARIOS)
    generate.add_argument("-o", "--output", required=True,
                          help="output JSON path")
    generate.add_argument("--objects", type=int, default=500)
    generate.add_argument("--users", type=int, default=24)
    generate.add_argument("--seed", type=int, default=7)
    generate.set_defaults(func=cmd_generate)

    inspect = commands.add_parser(
        "inspect", help="print the Hasse diagrams in a scenario file")
    inspect.add_argument("file")
    inspect.add_argument("--user", help="only this user")
    inspect.add_argument("--attribute", help="only this attribute")
    inspect.set_defaults(func=cmd_inspect)

    cluster = commands.add_parser(
        "cluster", help="cluster the users of a scenario file (Section 5)")
    cluster.add_argument("file")
    cluster.add_argument("--h", type=float, default=0.55,
                         help="dendrogram branch cut (default 0.55)")
    cluster.add_argument("--measure", default="weighted_jaccard",
                         help="similarity measure (see repro.MEASURES)")
    cluster.set_defaults(func=cmd_cluster)

    monitor = commands.add_parser(
        "monitor", help="stream a scenario through a monitor")
    monitor.add_argument("file",
                         help="scenario JSON file; with --service, a "
                              "JSONL command stream ('-' for stdin)")
    monitor.add_argument(
        "--service", action="store_true",
        help="service mode: read a JSONL command stream "
             "({\"op\": \"configure\"|\"subscribe\"|\"update\"|"
             "\"unsubscribe\"|\"push\", ...}) and emit one JSON "
             "notification event per line (MonitorService end to end)")
    monitor.add_argument("--algorithm",
                         choices=("baseline", "ftv", "ftva"),
                         default="ftv")
    monitor.add_argument("--window", type=int, default=None,
                         help="sliding window size W (Section 7)")
    monitor.add_argument("--h", type=float, default=0.55)
    monitor.add_argument("--theta2", type=float, default=0.5)
    monitor.add_argument(
        "--kernel", choices=KERNELS, default=KERNELS[0],
        help=f"dominance kernel, one of {', '.join(KERNELS)} "
             "(compiled: interned values + bitset matrices; vector: "
             "columnar numpy block decisions; interpreted: pure-Python "
             "reference)")
    monitor.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="ingest N objects per push_batch call (intra-batch sieve: "
             "identical notifications, fewer comparisons on "
             "duplicate-heavy streams); default: one push per object")
    monitor.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard the scope set across N workers (sharded ingest "
             "plane; notifications are byte-identical to --workers 1)")
    monitor.add_argument(
        "--executor", choices=EXECUTORS, default=EXECUTORS[0],
        help="execution backend for the shards (with --workers > 1): "
             "serial reference loop, one thread per shard, or one "
             "worker process per shard fed compact code-row wire "
             "frames")
    monitor.add_argument(
        "--no-memo", action="store_true",
        help="disable the cross-batch verdict memo (identical "
             "notifications; more comparisons on hot-object streams — "
             "useful for measuring the memo's effect)")
    monitor.add_argument("--quiet", action="store_true",
                         help="summary only, no per-delivery lines")
    monitor.set_defaults(func=cmd_monitor)

    profile = commands.add_parser(
        "profile", help="measure a scenario's shape (skew, order "
                        "density, similarity, frontier growth)")
    profile.add_argument("file")
    profile.add_argument("--sample", type=int, default=12,
                         help="user sample size for order statistics")
    profile.set_defaults(func=cmd_profile)

    explain = commands.add_parser(
        "explain", help="why is an object (not) Pareto-optimal for a "
                        "user?")
    explain.add_argument("file")
    explain.add_argument("--user", required=True)
    explain.add_argument("--object", type=int, required=True,
                         help="object id (row index) in the scenario")
    explain.add_argument("--max-dominators", type=int, default=3)
    explain.set_defaults(func=cmd_explain)

    serve = commands.add_parser(
        "serve", help="serve a MonitorService over HTTP/SSE "
                      "(subscribe/update/unsubscribe/feed + "
                      "GET /events/{user} notification streams)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (0 picks an ephemeral port, "
                            "printed on start)")
    serve.add_argument("--schema",
                       help="comma-separated attribute names for a "
                            "fresh service (e.g. 'brand,cpu')")
    serve.add_argument("--snapshot", metavar="PATH",
                       help="format-v2 snapshot: loaded on start when "
                            "it exists, written back on graceful "
                            "shutdown")
    serve.add_argument("--algorithm",
                       choices=("baseline", "ftv", "ftva"),
                       default="ftv")
    serve.add_argument("--window", type=int, default=None,
                       help="sliding window size W (Section 7)")
    serve.add_argument("--h", type=float, default=0.55)
    serve.add_argument("--theta2", type=float, default=0.5)
    serve.add_argument(
        "--kernel", choices=KERNELS, default=KERNELS[0],
        help="dominance kernel (same axis as the monitor command)")
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard the scope set across N workers")
    serve.add_argument(
        "--executor", choices=EXECUTORS, default=EXECUTORS[0],
        help="execution backend for the shards (with --workers > 1)")
    serve.add_argument("--no-memo", action="store_true",
                       help="disable the cross-batch verdict memo")
    serve.add_argument(
        "--queue-size", type=int, default=256, metavar="N",
        help="per-client SSE queue bound (default 256)")
    serve.add_argument(
        "--policy", choices=("block", "drop-oldest", "disconnect"),
        default="block",
        help="slow-consumer backpressure policy: stall ingest until "
             "the client catches up, drop its oldest queued event, or "
             "disconnect it (default: block)")
    serve.add_argument(
        "--heartbeat", type=float, default=15.0, metavar="SECONDS",
        help="SSE keep-alive comment interval (default 15s)")
    serve.set_defaults(func=cmd_serve)

    bench = commands.add_parser(
        "bench",
        help="run benchmark grids (list|run|report) or regenerate the "
             "paper's tables and figures")
    bench.add_argument("bench_args", nargs=argparse.REMAINDER,
                       help="'list', 'run <table>', 'report <dir>' for "
                            "the run-table lab; experiment ids for the "
                            "python -m repro.bench alias")
    bench.set_defaults(func=cmd_bench)
    return parser


def main(argv=None, out: IO[str] | None = None) -> int:
    """Entry point; *out* is injectable for tests."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args, out if out is not None else sys.stdout)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
