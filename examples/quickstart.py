"""Quickstart: the paper's running laptop example, end to end.

Builds the two customers of Table 2, replays the inventory of Table 1,
and shows which products each customer should be notified about — first
with the per-user Baseline (object by object, via ``push``), then with
FilterThenVerify sharing work through the customers' common preferences
and ingesting the whole shipment at once via ``push_batch``.

Run:  python examples/quickstart.py
"""

from repro import Baseline, Cluster, FilterThenVerify, PartialOrder, \
    Preference

SCHEMA = ("display", "brand", "cpu")


def build_customers() -> dict[str, Preference]:
    """Two customers with partially ordered preferences (paper Table 2)."""
    c1 = Preference({
        # c1 wants a 13-15.9" display; smaller beats bigger below that.
        "display": PartialOrder.from_hasse([
            ("13-15.9", "10-12.9"),
            ("10-12.9", "16-18.9"), ("10-12.9", "19-up"),
            ("16-18.9", "9.9-under"), ("19-up", "9.9-under"),
        ]),
        "brand": PartialOrder.from_hasse([
            ("Apple", "Lenovo"),
            ("Lenovo", "Sony"), ("Lenovo", "Toshiba"),
            ("Lenovo", "Samsung"),
        ]),
        # Dual-core beats everything; single-core is last.
        "cpu": PartialOrder.from_hasse([
            ("dual", "triple"), ("dual", "quad"),
            ("triple", "single"), ("quad", "single"),
        ]),
    })
    c2 = Preference({
        "display": PartialOrder.from_chain(
            ["13-15.9", "16-18.9", "10-12.9", "19-up", "9.9-under"]),
        "brand": PartialOrder.from_hasse([
            ("Lenovo", "Samsung"), ("Samsung", "Toshiba"),
            ("Toshiba", "Sony"), ("Apple", "Toshiba"),
        ]),
        # More cores are strictly better for c2.
        "cpu": PartialOrder.from_chain(["quad", "triple", "dual",
                                        "single"]),
    })
    return {"c1": c1, "c2": c2}


INVENTORY = [
    {"display": "10-12.9", "brand": "Apple", "cpu": "single"},    # o1
    {"display": "13-15.9", "brand": "Apple", "cpu": "dual"},      # o2
    {"display": "13-15.9", "brand": "Samsung", "cpu": "dual"},    # o3
    {"display": "19-up", "brand": "Toshiba", "cpu": "dual"},      # o4
    {"display": "9.9-under", "brand": "Samsung", "cpu": "quad"},  # o5
    {"display": "10-12.9", "brand": "Sony", "cpu": "single"},     # o6
    {"display": "9.9-under", "brand": "Lenovo", "cpu": "quad"},   # o7
    {"display": "10-12.9", "brand": "Apple", "cpu": "dual"},      # o8
    {"display": "19-up", "brand": "Sony", "cpu": "single"},       # o9
    {"display": "9.9-under", "brand": "Lenovo", "cpu": "triple"}, # o10
    {"display": "9.9-under", "brand": "Toshiba", "cpu": "triple"},# o11
    {"display": "9.9-under", "brand": "Samsung", "cpu": "triple"},# o12
    {"display": "13-15.9", "brand": "Sony", "cpu": "dual"},       # o13
    {"display": "16-18.9", "brand": "Sony", "cpu": "single"},     # o14
    {"display": "16-18.9", "brand": "Lenovo", "cpu": "quad"},     # o15
    {"display": "16-18.9", "brand": "Toshiba", "cpu": "single"},  # o16
]


def main() -> None:
    customers = build_customers()

    print("=== Baseline: one Pareto frontier per customer ===")
    monitor = Baseline(customers, SCHEMA)
    for number, product in enumerate(INVENTORY, start=1):
        targets = monitor.push(product)
        if targets:
            print(f"o{number:<3} {product['brand']:<8} -> notify "
                  f"{', '.join(sorted(targets))}")
    for customer in customers:
        frontier = [f"o{obj.oid + 1}" for obj in
                    monitor.frontier(customer)]
        print(f"{customer}'s Pareto frontier: {', '.join(frontier)}")
    print(f"pairwise comparisons: {monitor.stats.comparisons}")

    print()
    print("=== FilterThenVerify: share work via common preferences ===")
    shared = FilterThenVerify([Cluster.exact(customers)], SCHEMA)
    # push_batch ingests the whole shipment at once: rows are coerced
    # and value-interned in one pass, then processed in order — same
    # notifications as push(), with the per-arrival overhead amortised.
    notifications = shared.push_batch(INVENTORY)
    for number, (product, targets) in enumerate(
            zip(INVENTORY, notifications), start=1):
        if targets:
            print(f"o{number:<3} {product['brand']:<8} -> notify "
                  f"{', '.join(sorted(targets))}")
    print(f"pairwise comparisons: {shared.stats.comparisons} "
          f"(filter {shared.stats.filter.value}, "
          f"verify {shared.stats.verify.value})")
    virtual = shared.clusters[0].virtual
    print("\nThe virtual user's common CPU preference:")
    print(virtual.order("cpu").describe())


if __name__ == "__main__":
    main()
