"""Social feed with churn and persistence: the full library surface.

The paper's opening scenario — surface a new post to the readers for
whom it is Pareto-optimal — plus the operational concerns a real
deployment has: picking a monitor through one factory call, readers
joining and leaving mid-stream, persisting preferences across restarts,
and inspecting what a reader currently sees.

Run:  python examples/social_feed.py
"""

import tempfile

from repro import create_monitor, io as rio, viz
from repro.data.social import social_workload


def main() -> None:
    workload = social_workload(n_posts=800, n_users=24, seed=17,
                               communities=4)
    stream = list(workload.dataset)
    half = len(stream) // 2
    print(f"{len(stream)} posts, {len(workload.preferences)} readers, "
          f"attributes {workload.schema}\n")

    # One factory call picks the monitor: shared computation with live
    # target-set tracking (C_o, Definition 3.4).
    monitor = create_monitor(workload.preferences, workload.schema,
                             h=0.6, track_targets=True)
    for post in stream[:half]:
        monitor.push(post)

    # A reader leaves; a new one joins mid-stream with the same tastes.
    veteran, *_ = monitor.users
    newcomer_pref = workload.preferences[veteran]
    monitor.remove_user(veteran)
    monitor.add_user("fresh_reader", newcomer_pref,
                     history=stream[:half])
    print(f"churn: {veteran!r} left, 'fresh_reader' joined with the "
          "same preferences and full history\n")

    for post in stream[half:]:
        monitor.push(post)

    # Live target sets: who currently holds the very first post Pareto?
    print(f"current C_o of post #0: "
          f"{sorted(map(str, monitor.targets_of(0))) or 'nobody'}")
    frontier = monitor.frontier("fresh_reader")
    print(f"fresh_reader's frontier has {len(frontier)} posts\n")
    print(viz.frontier_table(monitor, "fresh_reader").splitlines()[0])
    for line in viz.frontier_table(monitor,
                                   "fresh_reader").splitlines()[1:5]:
        print(line)

    # Persist the user base; reload it into a fresh monitor.
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as handle:
        rio.save_preferences(
            {u: workload.preferences.get(u, newcomer_pref)
             for u in monitor.users}, handle)
        path = handle.name
    restored = rio.load_preferences(path)
    print(f"\npersisted {len(restored)} readers to {path} and reloaded "
          "them")

    # The reader's topic preference, as the paper would draw it.
    print("\nfresh_reader's topic preference (top two levels):")
    text = viz.hasse_text(newcomer_pref.order("topic"))
    for line in text.splitlines()[:3]:
        print("  " + line)


if __name__ == "__main__":
    main()
