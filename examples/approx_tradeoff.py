"""The approximation dial: θ2 sweep on one workload (Section 6).

Algorithm 3 grows each cluster's common preference relation with tuples a
θ2-fraction of members agree on.  Lower θ2 → larger approximate relation
→ stronger filtering (fewer comparisons) but more false negatives.  This
example sweeps θ2 and prints the whole trade-off curve: relation size,
comparison work, and delivery precision/recall against the exact answer
— a miniature of the paper's Table 11.

Run:  python examples/approx_tradeoff.py
"""

from repro import Cluster, FilterThenVerifyApprox, create_monitor
from repro.clustering.hierarchical import cluster_users
from repro.metrics.accuracy import DeliveryLog, delivery_metrics
from repro.data.movies import movie_workload
from repro.viz import markdown_table

BRANCH_CUT = 0.55
THETA1 = 6000


def main():
    workload = movie_workload(n_movies=1500, n_users=40, seed=7)
    print(f"{len(workload.preferences)} users, "
          f"{len(workload.dataset)} movies, h={BRANCH_CUT}\n")

    # Ground truth from the exact per-user baseline.
    baseline = create_monitor(workload.preferences, workload.schema,
                              shared=False)
    truth = DeliveryLog()
    for obj in workload.dataset:
        truth.record(baseline.push(obj))
    exact_work = baseline.stats.comparisons

    groups = cluster_users(workload.preferences, h=BRANCH_CUT,
                           measure="weighted_jaccard")
    rows = []
    for theta2 in (0.9, 0.7, 0.5, 0.3):
        clusters = [Cluster.approximate(group, THETA1, theta2)
                    for group in groups]
        monitor = FilterThenVerifyApprox(clusters, workload.schema)
        log = DeliveryLog()
        for obj in workload.dataset:
            log.record(monitor.push(obj))
        counts = delivery_metrics(truth, log)
        relation = sum(c.virtual.size() for c in clusters) / len(clusters)
        rows.append((theta2, round(relation),
                     monitor.stats.comparisons,
                     round(exact_work / monitor.stats.comparisons, 1),
                     round(100 * counts.precision, 2),
                     round(100 * counts.recall, 2)))

    print(markdown_table(
        ("theta2", "avg relation size", "comparisons",
         "speedup vs baseline", "precision %", "recall %"),
        rows))
    print("\nReading: as theta2 falls the approximate relation grows, "
          "work shrinks, and recall erodes — precision stays near 100% "
          "(Section 6.2's asymmetry).")


if __name__ == "__main__":
    main()
