"""Publication alerts: the paper's bibliography-server scenario.

Authors are notified about newly published articles that are
Pareto-optimal under their preferences on affiliation, author, conference
and keyword.  This example focuses on the *clustering* machinery: it
builds the dendrogram once, sweeps the branch cut h, and shows the
trade-off the paper's Section 8.2 describes — larger clusters share less,
smaller clusters amortise less.

Run:  python examples/publication_alerts.py
"""

from repro import (Baseline, Cluster, FilterThenVerify, build_dendrogram,
                   cluster_users)
from repro.data.publications import publication_workload


def main() -> None:
    print("generating synthetic publication corpus "
          "(see DESIGN.md §4) ...")
    workload = publication_workload(n_papers=1500, n_users=48, seed=11)
    stream = list(workload.dataset)

    baseline = Baseline(workload.preferences, workload.schema)
    for paper in stream:
        baseline.push(paper)
    print(f"Baseline comparisons: {baseline.stats.comparisons:,}\n")

    print("clustering authors once, sweeping the branch cut h:")
    dendrogram = build_dendrogram(workload.preferences,
                                  "weighted_jaccard")
    print(f"{'h':>5}  {'clusters':>8}  {'avg size':>8}  "
          f"{'shared tuples':>13}  {'comparisons':>11}  {'saving':>7}")
    for h in (0.75, 0.70, 0.65, 0.60, 0.55, 0.50):
        groups = cluster_users(workload.preferences, h,
                               dendrogram=dendrogram)
        clusters = [Cluster.exact(group) for group in groups]
        monitor = FilterThenVerify(clusters, workload.schema)
        for paper in stream:
            monitor.push(paper)
        shared = sum(c.virtual.size() for c in clusters) / len(clusters)
        saving = baseline.stats.comparisons / monitor.stats.comparisons
        print(f"{h:>5.2f}  {len(groups):>8}  "
              f"{len(workload.preferences) / len(groups):>8.1f}  "
              f"{shared:>13.0f}  {monitor.stats.comparisons:>11,}  "
              f"{saving:>6.2f}x")

    print("\nEvery row delivers exactly the Baseline's notifications —")
    print("FilterThenVerify is lossless; h only moves the work around.")


if __name__ == "__main__":
    main()
