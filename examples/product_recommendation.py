"""Product recommendation at scale: the paper's Example 1.1, grown up.

The quickstart replays the paper's two-customer laptop table verbatim;
this example runs the same scenario at a realistic size using the retail
generator: a popularity-weighted catalog, customers derived from shopping
personas, and all three monitor families side by side.

It prints, for each algorithm, how many notifications went out, how much
pairwise-comparison work was spent, and the speedup of shared computation
over the per-user baseline — the Figure-4 story on the retail workload.

Run:  python examples/product_recommendation.py
"""

from repro import create_monitor
from repro.data.retail import retail_workload


def run_monitor(label, monitor, dataset):
    """Stream the catalog through *monitor*; return delivery stats."""
    notifications = 0
    last_delivery = None
    for obj in dataset:
        targets = monitor.push(obj)
        notifications += len(targets)
        if targets:
            last_delivery = (obj, sorted(map(str, targets)))
    print(f"{label:<28} notifications: {notifications:>6}   "
          f"comparisons: {monitor.stats.comparisons:>9,}")
    return notifications, last_delivery, monitor.stats.comparisons


def main():
    workload = retail_workload(n_products=1200, n_users=48, seed=17,
                               personas=5, drop_rate=0.05, add_rate=0.004)
    print(f"catalog: {len(workload.dataset)} products, "
          f"{len(workload.preferences)} customers, "
          f"schema {workload.schema}\n")

    baseline = create_monitor(workload.preferences, workload.schema,
                              shared=False)
    shared = create_monitor(workload.preferences, workload.schema,
                            shared=True, h=0.3)
    approximate = create_monitor(workload.preferences, workload.schema,
                                 shared=True, approximate=True, h=0.3,
                                 theta2=0.65)

    base_count, sample, base_work = run_monitor(
        "Baseline (Alg. 1)", baseline, workload.dataset)
    shared_count, _, shared_work = run_monitor(
        "FilterThenVerify (Alg. 2)", shared, workload.dataset)
    approx_count, _, approx_work = run_monitor(
        "FilterThenVerifyApprox", approximate, workload.dataset)

    print(f"\nshared-computation speedup (comparisons): "
          f"{base_work / max(shared_work, 1):.1f}x exact, "
          f"{base_work / max(approx_work, 1):.1f}x approximate")
    print(f"exact monitors agree: {base_count == shared_count} "
          f"({base_count} notifications)")
    recall = approx_count / base_count if base_count else 1.0
    print(f"approximate recall (notification level): {recall:.3f}")

    if sample:
        obj, customers = sample
        row = dict(zip(workload.schema, obj.values))
        print(f"\nlast notified product: {row}")
        print(f"  -> delivered to {len(customers)} customers, e.g. "
              f"{customers[:5]}")

    # A customer's current Pareto frontier is directly inspectable.
    anyone = next(iter(workload.preferences))
    frontier = baseline.frontier(anyone)
    print(f"\n{anyone}'s final Pareto frontier has {len(frontier)} "
          f"products; first three:")
    for obj in frontier[:3]:
        print(f"  {dict(zip(workload.schema, obj.values))}")


if __name__ == "__main__":
    main()
