"""Movie alerts: notify viewers about newly released movies they would
rank Pareto-optimal — the paper's Netflix/IMDB scenario, on the synthetic
movie corpus.

Compares the three append-only monitors on the same stream:

* Baseline            — one frontier per viewer (Algorithm 1);
* FilterThenVerify    — cluster viewers, sieve through the common
                        preferences (Algorithm 2);
* FilterThenVerifyApprox — approximate common preferences (Algorithm 3)
                        for stronger filtering at a small accuracy cost.

Run:  python examples/movie_alerts.py
"""

import time

from repro import (Baseline, DeliveryLog, FilterThenVerify,
                   FilterThenVerifyApprox, delivery_metrics)
from repro.data.movies import movie_workload


def run(name, monitor, stream):
    log = DeliveryLog()
    started = time.perf_counter()
    log.record_all(monitor, stream)
    elapsed = time.perf_counter() - started
    print(f"{name:<24} {elapsed * 1000:8.0f} ms   "
          f"{monitor.stats.comparisons:>10,} comparisons   "
          f"{monitor.stats.delivered:>6,} deliveries")
    return log


def main() -> None:
    print("generating synthetic movie corpus (see DESIGN.md §4) ...")
    workload = movie_workload(n_movies=1500, n_users=60, seed=7)
    stream = list(workload.dataset)
    print(f"{len(stream)} movies, {len(workload.preferences)} viewers, "
          f"attributes {workload.schema}\n")

    exact_log = run("Baseline",
                    Baseline(workload.preferences, workload.schema),
                    stream)

    ftv = FilterThenVerify.from_users(workload.preferences,
                                      workload.schema, h=0.6)
    ftv_log = run(f"FilterThenVerify (k={len(ftv.clusters)})", ftv,
                  stream)

    ftva = FilterThenVerifyApprox.from_users(
        workload.preferences, workload.schema, h=0.6,
        theta1=6000, theta2=0.5)
    ftva_log = run(f"FilterThenVerifyApprox (k={len(ftva.clusters)})",
                   ftva, stream)

    assert ftv_log.targets == exact_log.targets, \
        "FilterThenVerify is exact: deliveries must match Baseline"
    counts = delivery_metrics(exact_log, ftva_log)
    print(f"\napproximation accuracy: precision "
          f"{100 * counts.precision:.2f}%  recall "
          f"{100 * counts.recall:.2f}%  F1 "
          f"{100 * counts.f_measure:.2f}%")

    viewer = next(iter(workload.preferences))
    frontier = ftv.frontier(viewer)
    print(f"\n{viewer}'s current Pareto frontier "
          f"({len(frontier)} movies), first three:")
    for obj in frontier[:3]:
        print("  " + ", ".join(f"{attr}={value}" for attr, value in
                               obj.as_dict(workload.schema).items()))


if __name__ == "__main__":
    main()
