"""Serving-plane smoke: boot `repro serve`, talk to it, shut it down.

The CI server-smoke step runs this script end to end against a real
subprocess — not a ServerThread — so it exercises exactly what an
operator gets: the CLI entrypoint, an ephemeral port announced on
stdout, HTTP lifecycle calls, one SSE stream, the /stats percentiles
and a clean drain through POST /shutdown.  Any step failing (or the
server outliving its drain) exits non-zero.

Run:  PYTHONPATH=src python examples/server_smoke.py
"""

import http.client
import json
import os
import re
import subprocess
import sys
import time

TIMEOUT = 30.0


def post(port, route, payload):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("POST", route, json.dumps(payload))
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def main():
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--schema", "color,size", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    try:
        # The CLI announces its ephemeral port on stdout, flushed.
        line = proc.stdout.readline()
        match = re.search(r"serving on 127\.0\.0\.1:(\d+)", line)
        assert match, f"no serving banner, got: {line!r}"
        port = int(match.group(1))
        print(f"server up on port {port}")

        status, reply = post(port, "/subscribe", {
            "user": "smoke",
            "preference": {
                "color": {"hasse": [["red", "blue"]]},
                "size": {"hasse": [["s", "m"]]},
            }})
        assert status == 200 and reply["ok"], reply
        print("subscribed")

        # SSE stream first, then feed: the arrival must push a frame.
        sse = http.client.HTTPConnection("127.0.0.1", port,
                                         timeout=TIMEOUT)
        sse.request("GET", "/events/smoke")
        stream = sse.getresponse()
        assert stream.status == 200, stream.status

        status, reply = post(port, "/feed",
                             {"rows": [["red", "s"], ["blue", "m"]]})
        assert status == 200 and reply["count"] >= 1, reply
        print(f"fed 2 rows, {reply['count']} notification(s)")

        deadline = time.monotonic() + TIMEOUT
        payload = None
        while time.monotonic() < deadline:
            line = stream.fp.readline().decode()
            if line.startswith("data: "):
                payload = json.loads(line[len("data: "):])
                break
        assert payload is not None, "no SSE notification arrived"
        assert payload["user"] == "smoke", payload
        assert payload["values"] == ["red", "s"], payload
        print(f"SSE delivered: {payload}")

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        conn.request("GET", "/stats")
        stats = json.loads(conn.getresponse().read())
        conn.close()
        assert stats["latency"]["count"] >= 1, stats["latency"]
        assert stats["latency"]["p50_ms"] > 0, stats["latency"]
        print(f"stats: p50={stats['latency']['p50_ms']:.3f} ms")

        status, reply = post(port, "/shutdown", {})
        assert status == 200 and reply["draining"], reply
        proc.wait(timeout=TIMEOUT)
        assert proc.returncode == 0, proc.returncode
        sse.close()
        print("clean shutdown")
        return 0
    finally:
        # Never mask the real failure: kill a surviving server but let
        # any in-flight exception propagate as the exit status.
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
            print("server had to be killed", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
