"""News feed with expiring stories: the sliding-window monitors.

A story is only worth pushing while it is *alive*; when it expires,
previously overshadowed stories can become Pareto-optimal again (the
"mend" of Algorithm 4/5).  This example streams a replayed corpus
through BaselineSW and FilterThenVerifySW and shows both the work saved
by the shared Pareto-frontier buffer (Theorem 7.5) and a concrete mend
event.

Run:  python examples/news_sliding_window.py
"""

from repro import (BaselineSW, Cluster, FilterThenVerifyApproxSW,
                   FilterThenVerifySW, cluster_users)
from repro.data.movies import movie_workload
from repro.data.stream import replay


def main() -> None:
    workload = movie_workload(n_movies=600, n_users=30, seed=21,
                              archetypes=3)
    window = 250
    stream = list(replay(workload.dataset, 2500))
    print(f"stream of {len(stream)} stories, window W={window}, "
          f"{len(workload.preferences)} readers\n")

    groups = cluster_users(workload.preferences, h=0.6)
    exact_clusters = [Cluster.exact(g) for g in groups]
    approx_clusters = [Cluster.approximate(g, 6000, 0.5) for g in groups]

    monitors = {
        "BaselineSW": BaselineSW(workload.preferences, workload.schema,
                                 window),
        "FilterThenVerifySW": FilterThenVerifySW(
            exact_clusters, workload.schema, window),
        "FilterThenVerifyApproxSW": FilterThenVerifyApproxSW(
            approx_clusters, workload.schema, window),
    }

    # Track one reader's frontier to catch a mend: an object that was NOT
    # delivered on arrival but is in the frontier later gained
    # Pareto-optimality when a dominator expired.
    reader = next(iter(workload.preferences))
    delivered_to_reader: set[int] = set()
    mended_example = None

    for obj in stream:
        results = {name: monitor.push(obj)
                   for name, monitor in monitors.items()}
        assert results["BaselineSW"] == results["FilterThenVerifySW"]
        if reader in results["BaselineSW"]:
            delivered_to_reader.add(obj.oid)
        if mended_example is None:
            frontier = monitors["BaselineSW"].frontier_ids(reader)
            revived = frontier - delivered_to_reader
            if revived:
                mended_example = (obj.oid, sorted(revived)[0])

    for name, monitor in monitors.items():
        print(f"{name:<26} {monitor.stats.comparisons:>12,} comparisons"
              f"   {monitor.stats.delivered:>7,} deliveries")

    if mended_example:
        at, story = mended_example
        print(f"\nmend observed: story #{story} was dominated on "
              f"arrival, but entered {reader}'s frontier by the time "
              f"story #{at} arrived — its dominators had expired.")
    buffer = monitors["FilterThenVerifySW"].shared_buffer(reader)
    frontier = monitors["FilterThenVerifySW"].shared_frontier(reader)
    print(f"\nshared buffer holds {len(buffer)} candidates vs "
          f"{len(frontier)} current cluster-frontier stories "
          f"(PB_U ⊇ P_U, Definition 7.4).")


if __name__ == "__main__":
    main()
