"""Clustering explorer: the four similarity measures of Section 5 compared.

Clusters the retail customer base with each exact similarity measure
(intersection size, Jaccard, weighted intersection, weighted Jaccard),
prints the dendrogram for the paper's choice, and reports how each
measure's clustering affects FilterThenVerify's shared work.

The paper's Table 3 argument — weighting preference tuples by their level
in the Hasse diagram separates users whose disagreements are near the top
— is visible here as a larger average common preference relation at an
equal cluster count.

Run:  python examples/clustering_explorer.py
"""

from repro import Cluster, FilterThenVerify
from repro.clustering.hierarchical import build_dendrogram, cluster_users
from repro.data.retail import retail_workload
from repro.viz import dendrogram_text, markdown_table

MEASURES = ("intersection", "jaccard", "weighted_intersection",
            "weighted_jaccard")
BRANCH_CUT = 0.3


def main():
    workload = retail_workload(n_products=600, n_users=24, seed=41,
                               personas=4, drop_rate=0.06, add_rate=0.005)
    print(f"{len(workload.preferences)} customers, "
          f"{len(workload.dataset)} products\n")

    rows = []
    for measure in MEASURES:
        groups = cluster_users(workload.preferences, h=BRANCH_CUT,
                               measure=measure)
        clusters = [Cluster.exact(group) for group in groups]
        monitor = FilterThenVerify(clusters, workload.schema)
        for obj in workload.dataset:
            monitor.push(obj)
        shared = sum(c.virtual.size() for c in clusters) / len(clusters)
        rows.append((measure, len(clusters), round(shared, 1),
                     monitor.stats.comparisons))

    print(markdown_table(
        ("measure", "clusters", "avg shared tuples", "FTV comparisons"),
        rows))

    print("\nDendrogram under the paper's measure (weighted Jaccard):\n")
    dendrogram = build_dendrogram(workload.preferences,
                                  "weighted_jaccard")
    print(dendrogram_text(dendrogram, h=BRANCH_CUT))


if __name__ == "__main__":
    main()
