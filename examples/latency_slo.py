"""Latency profiling: is every notification on time?

The paper's premise is that Pareto-optimal objects lose value quickly,
so per-push latency — not just cumulative time — is the operational
metric.  This example wraps two monitors in a `LatencyProfiler`, streams
the retail catalog, and prints the latency distribution plus compliance
with a 5 ms per-push budget.

The shared monitor's worst pushes are the interesting part: filtering
through the cluster sieve makes the *average* push cheaper, and the tail
shows whether any single push pays for it.

Run:  python examples/latency_slo.py
"""

from repro import LatencyProfiler, create_monitor
from repro.data.retail import retail_workload
from repro.viz import markdown_table

BUDGET_MS = 5.0


def profile(label, monitor, dataset):
    profiler = LatencyProfiler(monitor)
    for obj in dataset:
        profiler.push(obj)
    summary = profiler.profile.summary()
    report = profiler.slo(BUDGET_MS)
    return (label, round(summary["mean_ms"], 3),
            round(summary["p95_ms"], 3), round(summary["p99_ms"], 3),
            round(summary["max_ms"], 3),
            f"{100 * report.compliance:.1f}%")


def main():
    workload = retail_workload(n_products=1500, n_users=40, seed=23,
                               drop_rate=0.05, add_rate=0.004)
    print(f"{len(workload.dataset)} products, "
          f"{len(workload.preferences)} customers, "
          f"budget {BUDGET_MS} ms/push\n")

    rows = [
        profile("baseline",
                create_monitor(workload.preferences, workload.schema,
                               shared=False), workload.dataset),
        profile("filter-then-verify",
                create_monitor(workload.preferences, workload.schema,
                               shared=True, h=0.3), workload.dataset),
        profile("approximate",
                create_monitor(workload.preferences, workload.schema,
                               approximate=True, h=0.3, theta2=0.6),
                workload.dataset),
    ]
    print(markdown_table(
        ("monitor", "mean ms", "p95 ms", "p99 ms", "max ms",
         f"<= {BUDGET_MS} ms"), rows))


if __name__ == "__main__":
    main()
