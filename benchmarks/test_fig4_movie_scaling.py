"""Figure 4 — Baseline vs FilterThenVerify vs Approx on the movie
dataset (cumulative time, panel a; pairwise comparisons, panel b).

Expected shape: baseline ≫ ftv > ftva in both time and the
``comparisons`` extra_info; the paper reports 1-2 orders of magnitude at
|O| = 12,749 and |C| = 1,000 (grow ``REPRO_SCALE`` to approach that).
"""

from __future__ import annotations

import pytest

from repro.bench.runner import PAPER_H, make_monitor

KINDS = ("baseline", "ftv", "ftva")


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.benchmark(group="fig4 movies d=4")
def test_fig4_monitor(timed_monitor, movies, kind):
    workload, dendrogram = movies
    timed_monitor(
        lambda: make_monitor(kind, workload, dendrogram, h=PAPER_H),
        workload.dataset,
        dataset="movies", h=PAPER_H)
