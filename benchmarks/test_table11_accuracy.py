"""Table 11 — precision / recall / F-measure of FilterThenVerifyApprox
vs branch cut h, on both datasets (d = 4).

Each benchmark times the approximate monitor's run; the accuracy against
the exact Baseline deliveries is attached as ``extra_info`` and asserted
to match the paper's shape (precision near 100%, recall high and
non-catastrophic as h shrinks).
"""

from __future__ import annotations

import pytest

from repro.bench.runner import PAPER_H_GRID, make_monitor, prepared
from repro.metrics.accuracy import DeliveryLog, delivery_metrics

_TRUTH_CACHE: dict[str, DeliveryLog] = {}


def truth_log(dataset: str) -> DeliveryLog:
    if dataset not in _TRUTH_CACHE:
        workload, dendrogram = prepared(dataset)
        baseline = make_monitor("baseline", workload, dendrogram)
        _TRUTH_CACHE[dataset] = DeliveryLog().record_all(
            baseline, workload.dataset)
    return _TRUTH_CACHE[dataset]


def run_with_log(monitor, stream) -> DeliveryLog:
    return DeliveryLog().record_all(monitor, stream)


@pytest.mark.parametrize("h", PAPER_H_GRID)
@pytest.mark.parametrize("dataset", ("movies", "publications"))
@pytest.mark.benchmark(group="table11 accuracy of FTVA vs h")
def test_table11_accuracy(benchmark, dataset, h):
    workload, dendrogram = prepared(dataset)
    truth = truth_log(dataset)
    state = {}

    def setup():
        state["monitor"] = make_monitor("ftva", workload, dendrogram, h=h)
        return (state["monitor"], workload.dataset), {}

    log = benchmark.pedantic(run_with_log, setup=setup, rounds=1,
                             iterations=1)
    counts = delivery_metrics(truth, log)
    benchmark.extra_info.update({
        "dataset": dataset, "h": h,
        "precision_pct": round(100 * counts.precision, 2),
        "recall_pct": round(100 * counts.recall, 2),
        "f_measure_pct": round(100 * counts.f_measure, 2),
        "comparisons": state["monitor"].stats.comparisons,
    })
    # The paper's qualitative claims (Table 11).
    assert counts.precision > 0.9
    assert counts.recall > 0.6
