"""Figure 5 — Baseline vs FilterThenVerify vs Approx on the publication
dataset (cumulative time and pairwise comparisons vs |O|)."""

from __future__ import annotations

import pytest

from repro.bench.runner import PAPER_H, make_monitor

KINDS = ("baseline", "ftv", "ftva")


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.benchmark(group="fig5 publications d=4")
def test_fig5_monitor(timed_monitor, publications, kind):
    workload, dendrogram = publications
    timed_monitor(
        lambda: make_monitor(kind, workload, dendrogram, h=PAPER_H),
        workload.dataset,
        dataset="publications", h=PAPER_H)
