"""Ablation — the four exact similarity measures of Section 5 plus the
two frequency-vector measures of Section 6.3, compared at equal cluster
counts on the movie dataset.

Measures the design choice the paper motivates in Examples 5.1-5.5: do
the weighted measures produce clusters whose members actually share
more preference tuples, and does FilterThenVerify run faster on them?
"""

from __future__ import annotations

import pytest

from repro.clustering.hierarchical import build_dendrogram
from repro.core.clusters import Cluster
from repro.core.filter_verify import FilterThenVerify

MEASURES = ("intersection", "jaccard", "weighted_intersection",
            "weighted_jaccard", "approx_jaccard",
            "approx_weighted_jaccard")

_DENDROGRAMS: dict[str, object] = {}


def clusters_for(measure: str, workload):
    """Cut each measure's dendrogram at equal cluster count (|C|/8).

    Measures have incomparable similarity scales, so comparing them at
    one fixed h would be meaningless.
    """
    if measure not in _DENDROGRAMS:
        _DENDROGRAMS[measure] = build_dendrogram(workload.preferences,
                                                 measure)
    dendrogram = _DENDROGRAMS[measure]
    target = max(2, len(workload.preferences) // 8)
    merges = dendrogram.merges[:len(workload.preferences) - target]
    groups: dict[frozenset, None] = {
        frozenset([user]): None for user in dendrogram.users}
    for merge in merges:
        del groups[merge.left]
        del groups[merge.right]
        groups[merge.merged] = None
    preferences = workload.preferences
    return [Cluster.exact({u: preferences[u] for u in group})
            for group in groups]


def run_monitor(monitor, stream) -> int:
    for obj in stream:
        monitor.push(obj)
    return monitor.stats.comparisons


@pytest.mark.parametrize("measure", MEASURES)
@pytest.mark.benchmark(group="ablation: similarity measures (equal k)")
def test_ablation_similarity(benchmark, movies, measure):
    workload, _ = movies
    state = {}

    def setup():
        clusters = clusters_for(measure, workload)
        state["clusters"] = clusters
        state["monitor"] = FilterThenVerify(clusters, workload.schema)
        return (state["monitor"], workload.dataset), {}

    benchmark.pedantic(run_monitor, setup=setup, rounds=1, iterations=1)
    clusters = state["clusters"]
    shared = sum(c.virtual.size() for c in clusters) / len(clusters)
    benchmark.extra_info.update({
        "measure": measure,
        "clusters": len(clusters),
        "avg_shared_tuples": round(shared, 1),
        "comparisons": state["monitor"].stats.comparisons,
    })
