"""Ablation — speedup vs number of users (the 'many users' thesis).

Baseline cost grows linearly in |C| while the shared monitors amortise
filtering across each cluster; the comparison-count speedup therefore
grows with the user count toward the paper's 1-2 orders of magnitude at
|C| = 1,000.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import PAPER_H, get_scale, make_monitor, prepared

KINDS = ("baseline", "ftv", "ftva")


def user_grid():
    base = max(8, get_scale().users // 4)
    return (base, base * 2, base * 4)


@pytest.mark.parametrize("users", user_grid())
@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.benchmark(group="ablation: users sweep (movies)")
def test_ablation_users(timed_monitor, kind, users):
    workload, dendrogram = prepared("movies", users)
    timed_monitor(
        lambda: make_monitor(kind, workload, dendrogram, h=PAPER_H),
        workload.dataset,
        users=users)
