"""Figure 10 — sliding-window monitors vs number of attributes d on the
movie stream, at the largest window (W = 3,200)."""

from __future__ import annotations

import pytest

from repro.bench.experiments import _prepared_projected
from repro.bench.runner import (PAPER_DIMENSIONS, PAPER_H, PAPER_WINDOWS,
                                get_scale, make_monitor, replayed_stream)

KINDS = ("baseline", "ftv", "ftva")
WINDOW = PAPER_WINDOWS[-1]


@pytest.mark.parametrize("d", PAPER_DIMENSIONS)
@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.benchmark(group="fig10 movies sliding window vs d")
def test_fig10_monitor(timed_monitor, kind, d):
    scale = get_scale()
    workload, dendrogram = _prepared_projected("movies", d,
                                               scale.stream_users,
                                               scale.stream_objects)
    stream = replayed_stream(workload, scale.stream_length)
    timed_monitor(
        lambda: make_monitor(kind, workload, dendrogram, h=PAPER_H,
                             window=WINDOW),
        stream,
        dataset="movies", d=d, window=WINDOW)
