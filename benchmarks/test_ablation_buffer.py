"""Ablation — Pareto-frontier buffer footprint under the sliding window.

BaselineSW keeps one buffer ``PB_c`` per user; FilterThenVerifySW keeps
one shared ``PB_U`` per cluster (Definition 7.4, Theorem 7.5).  The
answers are identical, so the buffer totals measure the memory side of
sharing — a claim Section 7 argues but never plots.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import (PAPER_H, get_scale, make_monitor,
                                prepared_stream, replayed_stream)

WINDOWS = (400, 800, 1600)

_BUFFERED: dict[tuple, int] = {}


def run_and_measure(monitor, stream) -> int:
    for obj in stream:
        monitor.push(obj)
    return sum(len(buffer) for buffer in monitor.buffers())


@pytest.mark.parametrize("window", WINDOWS)
@pytest.mark.parametrize("kind", ["baseline", "ftv"])
@pytest.mark.benchmark(group="ablation: sliding-window buffer footprint")
def test_ablation_buffer(benchmark, kind, window):
    workload, dendrogram = prepared_stream("movies")
    stream = replayed_stream(workload, get_scale().stream_length // 2)
    state = {}

    def setup():
        state["monitor"] = make_monitor(kind, workload, dendrogram,
                                        h=PAPER_H, window=window)
        return (state["monitor"], stream), {}

    buffered = benchmark.pedantic(run_and_measure, setup=setup, rounds=1,
                                  iterations=1)
    monitor = state["monitor"]
    benchmark.extra_info.update({
        "kind": kind,
        "window": window,
        "buffered_objects": buffered,
        "buffers": len(monitor.buffers()),
        "comparisons": monitor.stats.comparisons,
    })
    _BUFFERED[(kind, window)] = buffered
    baseline_key = ("baseline", window)
    ftv_key = ("ftv", window)
    if baseline_key in _BUFFERED and ftv_key in _BUFFERED:
        # The shared buffer never stores more than the per-user buffers.
        assert _BUFFERED[ftv_key] <= _BUFFERED[baseline_key]
