"""Figure 6 — effect of the number of attributes d on the movie dataset.

Expected shape: super-linear growth in d for every monitor (larger d →
more incomparability → larger frontiers), with the monitor ordering
baseline ≫ ftv > ftva preserved at every d.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import _prepared_projected
from repro.bench.runner import PAPER_DIMENSIONS, PAPER_H, make_monitor

KINDS = ("baseline", "ftv", "ftva")


@pytest.mark.parametrize("d", PAPER_DIMENSIONS)
@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.benchmark(group="fig6 movies vs d")
def test_fig6_monitor(timed_monitor, kind, d):
    workload, dendrogram = _prepared_projected("movies", d)
    timed_monitor(
        lambda: make_monitor(kind, workload, dendrogram, h=PAPER_H),
        workload.dataset,
        dataset="movies", d=d)
