"""Table 12 — precision / recall / F-measure of FilterThenVerifyApproxSW
vs window size W and branch cut h, on both replayed streams (d = 4).

Paper shape: precision ~100% everywhere; recall declines slowly with
smaller h; W has no strong effect.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import (PAPER_H_GRID, PAPER_WINDOWS, get_scale,
                                make_monitor, prepared_stream,
                                replayed_stream)
from repro.metrics.accuracy import DeliveryLog, delivery_metrics

_STREAMS: dict[str, tuple] = {}
_TRUTH: dict[tuple, DeliveryLog] = {}

#: Keep the benchmark suite bounded: the paper's full W grid is exercised
#: at the extremes; `python -m repro.bench tab12` covers all 16 cells.
WINDOWS = (PAPER_WINDOWS[0], PAPER_WINDOWS[-1])


def stream_setup(dataset: str):
    if dataset not in _STREAMS:
        scale = get_scale()
        workload, dendrogram = prepared_stream(dataset)
        _STREAMS[dataset] = (
            workload, dendrogram,
            replayed_stream(workload, scale.accuracy_stream_length))
    return _STREAMS[dataset]


def truth_log(dataset: str, window: int) -> DeliveryLog:
    key = (dataset, window)
    if key not in _TRUTH:
        workload, dendrogram, stream = stream_setup(dataset)
        baseline = make_monitor("baseline", workload, dendrogram,
                                window=window)
        _TRUTH[key] = DeliveryLog().record_all(baseline, stream)
    return _TRUTH[key]


def run_with_log(monitor, stream) -> DeliveryLog:
    return DeliveryLog().record_all(monitor, stream)


@pytest.mark.parametrize("h", PAPER_H_GRID)
@pytest.mark.parametrize("window", WINDOWS)
@pytest.mark.parametrize("dataset", ("movies", "publications"))
@pytest.mark.benchmark(group="table12 accuracy of FTVA-SW vs W and h")
def test_table12_accuracy(benchmark, dataset, window, h):
    workload, dendrogram, stream = stream_setup(dataset)
    truth = truth_log(dataset, window)
    state = {}

    def setup():
        state["monitor"] = make_monitor("ftva", workload, dendrogram,
                                        h=h, window=window)
        return (state["monitor"], stream), {}

    log = benchmark.pedantic(run_with_log, setup=setup, rounds=1,
                             iterations=1)
    counts = delivery_metrics(truth, log)
    benchmark.extra_info.update({
        "dataset": dataset, "window": window, "h": h,
        "precision_pct": round(100 * counts.precision, 2),
        "recall_pct": round(100 * counts.recall, 2),
        "f_measure_pct": round(100 * counts.f_measure, 2),
        "comparisons": state["monitor"].stats.comparisons,
    })
    assert counts.precision > 0.9
    assert counts.recall > 0.6
