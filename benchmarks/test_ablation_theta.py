"""Ablation — Algorithm 3's thresholds θ1 (size cap) and θ2 (frequency
floor), the design knobs of Section 6.1.

Expected: growing the approximate relation (large θ1, small θ2) filters
more aggressively — fewer comparisons — at the cost of recall; shrinking
it recovers exactness.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import PAPER_H, make_monitor, prepared
from repro.clustering.hierarchical import cluster_users
from repro.core.clusters import Cluster
from repro.core.filter_verify import FilterThenVerifyApprox
from repro.metrics.accuracy import DeliveryLog, delivery_metrics

_TRUTH: dict[str, DeliveryLog] = {}
_GROUPS: dict[str, list] = {}


def setup_dataset(dataset: str):
    workload, dendrogram = prepared(dataset)
    if dataset not in _TRUTH:
        baseline = make_monitor("baseline", workload, dendrogram)
        _TRUTH[dataset] = DeliveryLog().record_all(baseline,
                                                   workload.dataset)
        _GROUPS[dataset] = cluster_users(workload.preferences, PAPER_H,
                                         dendrogram=dendrogram)
    return workload, _TRUTH[dataset], _GROUPS[dataset]


def run_with_log(monitor, stream) -> DeliveryLog:
    return DeliveryLog().record_all(monitor, stream)


@pytest.mark.parametrize("theta1,theta2", [
    (500, 0.5), (2000, 0.5), (6000, 0.5),   # size-cap sweep
    (6000, 0.3), (6000, 0.7),               # frequency-floor sweep
])
@pytest.mark.benchmark(group="ablation: Algorithm 3 thresholds")
def test_ablation_theta(benchmark, theta1, theta2):
    workload, truth, groups = setup_dataset("movies")
    state = {}

    def setup():
        clusters = [Cluster.approximate(g, theta1, theta2)
                    for g in groups]
        state["clusters"] = clusters
        state["monitor"] = FilterThenVerifyApprox(clusters,
                                                  workload.schema)
        return (state["monitor"], workload.dataset), {}

    log = benchmark.pedantic(run_with_log, setup=setup, rounds=1,
                             iterations=1)
    counts = delivery_metrics(truth, log)
    clusters = state["clusters"]
    benchmark.extra_info.update({
        "theta1": theta1, "theta2": theta2,
        "avg_relation_size": round(
            sum(c.virtual.size() for c in clusters) / len(clusters)),
        "comparisons": state["monitor"].stats.comparisons,
        "precision_pct": round(100 * counts.precision, 2),
        "recall_pct": round(100 * counts.recall, 2),
    })
    assert counts.precision > 0.85
