"""Shared fixtures for the benchmark suite.

Each ``test_fig*`` / ``test_table*`` module regenerates one table or
figure of the paper (see DESIGN.md §5).  Monitors are timed with
``benchmark.pedantic(rounds=1)`` — a monitoring run is a long, internally
repetitive loop, so one round gives stable numbers and keeps the whole
suite in minutes.  Pairwise-comparison counts (the paper's
hardware-independent metric) are attached as ``extra_info`` and printed
in the benchmark table via the ``cmp`` column of ``--benchmark-columns``
groups.

Set ``REPRO_SCALE`` to grow every workload toward paper scale.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import get_scale, prepared


@pytest.fixture(scope="session")
def scale():
    return get_scale()


@pytest.fixture(scope="session")
def movies():
    return prepared("movies")


@pytest.fixture(scope="session")
def publications():
    return prepared("publications")


def run_monitor(monitor, stream) -> int:
    """The timed kernel: push the whole stream; return comparisons."""
    push = monitor.push
    for obj in stream:
        push(obj)
    return monitor.stats.comparisons


@pytest.fixture
def timed_monitor(benchmark):
    """Benchmark a freshly-built monitor over a stream exactly once."""

    def runner(make_monitor, stream, **extra):
        state = {}

        def setup():
            state["monitor"] = make_monitor()
            return (state["monitor"], stream), {}

        benchmark.pedantic(run_monitor, setup=setup, rounds=1,
                           iterations=1)
        monitor = state["monitor"]
        benchmark.extra_info["comparisons"] = monitor.stats.comparisons
        benchmark.extra_info["delivered"] = monitor.stats.delivered
        benchmark.extra_info["objects"] = monitor.stats.objects
        for key, value in extra.items():
            benchmark.extra_info[key] = value
        return monitor

    return runner
