"""Figure 8 — sliding-window monitors on the movie stream vs window
size W ∈ {400, 800, 1600, 3200}.

Expected shape: cost grows super-linearly with W (wider windows mean
larger frontiers and buffers); BaselineSW ≫ FilterThenVerifySW >
FilterThenVerifyApproxSW at every W.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import (PAPER_H, PAPER_WINDOWS, get_scale,
                                make_monitor, prepared_stream,
                                replayed_stream)

KINDS = ("baseline", "ftv", "ftva")


@pytest.fixture(scope="module")
def stream_setup():
    scale = get_scale()
    workload, dendrogram = prepared_stream("movies")
    return workload, dendrogram, replayed_stream(workload,
                                                 scale.stream_length)


@pytest.mark.parametrize("window", PAPER_WINDOWS)
@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.benchmark(group="fig8 movies sliding window")
def test_fig8_monitor(timed_monitor, stream_setup, kind, window):
    workload, dendrogram, stream = stream_setup
    timed_monitor(
        lambda: make_monitor(kind, workload, dendrogram, h=PAPER_H,
                             window=window),
        stream,
        dataset="movies", window=window)
