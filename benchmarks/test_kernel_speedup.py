"""Kernel smoke benchmark — compiled vs interpreted dominance.

A deliberately small slice of the movie workload (so the whole suite
stays fast) pushed through FilterThenVerify under both kernels.  The
benchmark table shows the throughput gap; the ``comparisons`` extra_info
must be identical between the two rows — the compiled kernel changes how
fast a comparison runs, never how many happen or what they conclude.

For the full speedup snapshot across monitors (recorded in
``BENCH_pr1.json``), run ``python -m repro.bench perf``.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import PAPER_H, make_monitor
from repro.core.compiled import KERNELS

SMOKE_OBJECTS = 600


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.benchmark(group="kernel smoke: ftv movies d=4")
def test_kernel_throughput(timed_monitor, movies, kernel):
    workload, dendrogram = movies
    stream = workload.dataset.objects[:SMOKE_OBJECTS]
    timed_monitor(
        lambda: make_monitor("ftv", workload, dendrogram, h=PAPER_H,
                             kernel=kernel),
        stream,
        dataset="movies", kernel=kernel)


def test_kernels_agree_on_notifications(movies):
    """The cheap end-to-end guarantee behind the benchmark numbers."""
    workload, dendrogram = movies
    stream = workload.dataset.objects[:SMOKE_OBJECTS]
    runs = {}
    for kernel in KERNELS:
        monitor = make_monitor("ftv", workload, dendrogram, h=PAPER_H,
                               kernel=kernel)
        runs[kernel] = (monitor.push_batch(stream),
                        monitor.stats.snapshot())
    assert runs["compiled"] == runs["interpreted"]
    # The vector kernel counts the rows*members vector-equivalent, so
    # notifications and delivered totals are the cross-kernel contract.
    assert runs["vector"][0] == runs["compiled"][0]
    assert runs["vector"][1]["delivered"] \
        == runs["compiled"][1]["delivered"]


def test_vector_kernel_speed_gate(movies):
    """The PR 7 regression gate: on a windowed full-corpus replay (the
    vector kernel's regime — scans run at window scale), the vector
    kernel must deliver notifications identical to compiled and beat
    its wall clock.  The scenario is sized so the measured advantage
    (~4-6x, ``BENCH_pr7.json``) dwarfs one-core CI-runner noise: the
    gate only asserts *faster at all*, a margin several times wider
    than any jitter seen in practice.  For the full sweep, run
    ``python -m repro.bench perf-vector``."""
    import time

    from repro.core.sliding import BaselineSW
    from repro.data.stream import replay

    workload, dendrogram = movies
    users = dict(list(workload.preferences.items())[:6])
    schema = workload.dataset.schema
    # Full-corpus replay: the window stays well under the distinct
    # corpus (the §8.3 ratio), so frontiers and buffers actually fill.
    stream = list(replay(workload.dataset, 1600))
    elapsed = {}
    results = {}
    for kernel in ("compiled", "vector"):
        monitor = BaselineSW(users, schema, 800, kernel=kernel)
        started = time.perf_counter()
        notifications = monitor.push_batch(stream)
        elapsed[kernel] = time.perf_counter() - started
        results[kernel] = notifications
    assert results["vector"] == results["compiled"]
    assert elapsed["vector"] < elapsed["compiled"], elapsed


def test_batch_ingest_cuts_comparisons_on_replayed_stream(movies):
    """Duplicate-heavy smoke for the intra-batch sieve: batched ingest
    must match sequential notifications with fewer comparisons (both
    memo-less, so the sieve's own effect is what is measured).  For
    the full sweep (recorded in ``BENCH_pr2.json``), run
    ``python -m repro.bench perf-batch``."""
    from repro.data.stream import replay

    workload, dendrogram = movies
    # Cycle a small slice so each batch repeats objects, as in §8.3:
    # the sieve exploits duplication *within* a batch, so the batch
    # size must cover a few replay cycles.
    stream = list(replay(workload.dataset.objects[:SMOKE_OBJECTS // 4],
                         SMOKE_OBJECTS))
    sequential = make_monitor("ftv", workload, dendrogram, h=PAPER_H,
                              memo=False)
    batched = make_monitor("ftv", workload, dendrogram, h=PAPER_H,
                           memo=False)
    expected = [sequential.push(obj) for obj in stream]
    assert batched.push_batch(stream) == expected
    assert batched.stats.comparisons < sequential.stats.comparisons


def test_cross_batch_memo_cuts_comparisons_across_batches(movies):
    """The PR 3 regression gate: on a hot-object replay split into many
    batches, the cross-batch verdict memo must deliver identical
    notifications while cutting comparisons well below the memo-less
    batched path (the PR 2 numbers).  Comparison counts are
    deterministic, so this is CI-stable; for the full sweep (recorded
    in ``BENCH_pr3.json``), run ``python -m repro.bench perf-steady``."""
    from repro.data.stream import replay

    workload, dendrogram = movies
    stream = list(replay(workload.dataset.objects[:SMOKE_OBJECTS // 8],
                         SMOKE_OBJECTS))
    batch = SMOKE_OBJECTS // 4
    results = {}
    for memo in (False, True):
        monitor = make_monitor("ftv", workload, dendrogram, h=PAPER_H,
                               memo=memo)
        notifications = []
        for cut in range(0, len(stream), batch):
            notifications.extend(
                monitor.push_batch(stream[cut:cut + batch]))
        results[memo] = (notifications, monitor.stats.comparisons)
    assert results[True][0] == results[False][0]
    # Every batch after the first is pure repetition: steady state must
    # at least halve the memo-less batched comparisons.
    assert results[True][1] * 2 < results[False][1]
