"""Kernel smoke benchmark — compiled vs interpreted dominance.

A deliberately small slice of the movie workload (so the whole suite
stays fast) pushed through FilterThenVerify under both kernels.  The
benchmark table shows the throughput gap; the ``comparisons`` extra_info
must be identical between the two rows — the compiled kernel changes how
fast a comparison runs, never how many happen or what they conclude.

For the full speedup snapshot across monitors (recorded in
``BENCH_pr1.json``), run ``python -m repro.bench perf``.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import PAPER_H, make_monitor
from repro.core.compiled import KERNELS

SMOKE_OBJECTS = 600


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.benchmark(group="kernel smoke: ftv movies d=4")
def test_kernel_throughput(timed_monitor, movies, kernel):
    workload, dendrogram = movies
    stream = workload.dataset.objects[:SMOKE_OBJECTS]
    timed_monitor(
        lambda: make_monitor("ftv", workload, dendrogram, h=PAPER_H,
                             kernel=kernel),
        stream,
        dataset="movies", kernel=kernel)


def test_kernels_agree_on_notifications(movies):
    """The cheap end-to-end guarantee behind the benchmark numbers."""
    workload, dendrogram = movies
    stream = workload.dataset.objects[:SMOKE_OBJECTS]
    runs = {}
    for kernel in KERNELS:
        monitor = make_monitor("ftv", workload, dendrogram, h=PAPER_H,
                               kernel=kernel)
        runs[kernel] = (monitor.push_batch(stream),
                        monitor.stats.snapshot())
    assert runs["compiled"] == runs["interpreted"]


def test_batch_ingest_cuts_comparisons_on_replayed_stream(movies):
    """Duplicate-heavy smoke for the intra-batch sieve: batched ingest
    must match sequential notifications with fewer comparisons.  For
    the full sweep (recorded in ``BENCH_pr2.json``), run
    ``python -m repro.bench perf-batch``."""
    from repro.data.stream import replay

    workload, dendrogram = movies
    # Cycle a small slice so each batch repeats objects, as in §8.3:
    # the sieve exploits duplication *within* a batch, so the batch
    # size must cover a few replay cycles.
    stream = list(replay(workload.dataset.objects[:SMOKE_OBJECTS // 4],
                         SMOKE_OBJECTS))
    sequential = make_monitor("ftv", workload, dendrogram, h=PAPER_H)
    batched = make_monitor("ftv", workload, dendrogram, h=PAPER_H)
    expected = [sequential.push(obj) for obj in stream]
    assert batched.push_batch(stream) == expected
    assert batched.stats.comparisons < sequential.stats.comparisons
