"""Ablation — batch frontier algorithms (bulk loading a corpus).

BNL, SFS and divide & conquer return identical frontiers; they differ in
pairwise comparisons.  SFS's dominance-monotone presort guarantees every
comparison is against a true frontier member, capping its work at
``n·|P|``; BNL has no bound but its early exits can win on friendly
arrival orders.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import prepared
from repro.core.batch import bnl_frontier, dc_frontier, sfs_frontier
from repro.metrics.counters import Counter

ALGORITHMS = {
    "bnl": bnl_frontier,
    "sfs": sfs_frontier,
    "dc": dc_frontier,
}

_RESULTS: dict[str, dict] = {}


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
@pytest.mark.benchmark(group="ablation: batch frontier algorithms")
def test_ablation_batch(benchmark, algorithm):
    workload, _ = prepared("movies")
    user = next(iter(workload.preferences))
    preference = workload.preferences[user]
    counter = Counter()

    def run():
        counter.reset()
        return ALGORITHMS[algorithm](
            preference, workload.dataset.objects, workload.schema,
            counter)

    frontier = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "algorithm": algorithm,
        "frontier_size": len(frontier),
        "comparisons": counter.value,
    })
    _RESULTS[algorithm] = {
        "ids": sorted(o.oid for o in frontier),
        "comparisons": counter.value,
    }
    # All algorithms that already ran agree on the frontier.
    first = next(iter(_RESULTS.values()))
    assert _RESULTS[algorithm]["ids"] == first["ids"]
    # SFS's guarantee: every comparison hits a true frontier member.
    if algorithm == "sfs":
        n_objects = len(workload.dataset)
        assert counter.value <= n_objects * max(len(frontier), 1)
