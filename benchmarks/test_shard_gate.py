"""The PR 5 regression gate: sharded dispatch must equal serial.

Comparison counts and notification sets are deterministic, so these
assertions are CI-stable (no wall-clock noise).  Two halves of the
serial-equivalence contract (DESIGN.md §12) are gated on a fixed
hot-object replay of the movie workload:

* **whole-monitor equivalence** — a sharded monitor (threads executor,
  2 and 4 shards) must deliver byte-identical per-row notification
  sets, per-user frontiers and *total* comparison counts to the serial
  reference (equal sieve orders are co-located by the plan, so no
  shared sieve pass is ever split);
* **per-shard equivalence** — each shard's counters must equal an
  unsharded monitor built over exactly that shard's scopes and fed the
  same batches: a shard is a serial monitor over its scope subset, not
  an approximation of one.

For wall-clock numbers (which need real cores to move), run
``python -m repro.bench perf-shard`` — snapshot in ``BENCH_pr5.json``.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import PAPER_H, clusters_at
from repro.data.stream import replay
from repro.service import ServicePolicy

GATE_DISTINCT = 48
GATE_OBJECTS = 480
GATE_BATCH = 96


def _stream(workload):
    hot = workload.dataset.objects[:GATE_DISTINCT]
    return list(replay(hot, GATE_OBJECTS))


def _policy(kind, workers=1, executor="serial", kernel="compiled"):
    return ServicePolicy(
        shared=kind != "baseline",
        approximate=kind == "ftva",
        h=PAPER_H,
        workers=workers,
        executor=executor,
        kernel=kernel,
    )


def _build(policy, workload, dendrogram):
    if not policy.shared:
        return policy.build(workload.preferences, workload.schema)
    clusters = clusters_at(workload, dendrogram, PAPER_H, policy.approximate)
    return policy.build_from_clusters(clusters, workload.schema)


def _feed(monitor, stream):
    results = []
    for cut in range(0, len(stream), GATE_BATCH):
        results.extend(monitor.push_batch(stream[cut : cut + GATE_BATCH]))
    return results


@pytest.mark.parametrize("workers", (2, 4))
@pytest.mark.parametrize("kind", ("baseline", "ftv"))
def test_sharded_dispatch_matches_serial(movies, kind, workers):
    """Threads executor at 2 and 4 shards: byte-identical notifications
    and identical comparison totals on a fixed replay."""
    workload, dendrogram = movies
    stream = _stream(workload)

    serial = _build(_policy(kind), workload, dendrogram)
    expected = _feed(serial, stream)

    sharded_policy = _policy(kind, workers, "threads")
    sharded = _build(sharded_policy, workload, dendrogram)
    try:
        assert _feed(sharded, stream) == expected
        for user in workload.preferences:
            assert sharded.frontier_ids(user) == serial.frontier_ids(user)
        assert sharded.stats.comparisons == serial.stats.comparisons
        assert sharded.stats.delivered == serial.stats.delivered
    finally:
        sharded.close()


@pytest.mark.parametrize("kind", ("baseline", "ftv"))
def test_sharded_vector_kernel_matches_serial_compiled(movies, kind):
    """The vector kernel under the sharded plane: a threads executor at
    2 shards with ``kernel="vector"`` must deliver notifications and
    frontiers byte-identical to the *serial compiled* reference.  The
    comparison totals are compared within the vector kernel only (its
    rows*members vector-equivalent count is deterministic, so sharded
    must still equal serial vector — but not compiled)."""
    workload, dendrogram = movies
    stream = _stream(workload)

    serial = _build(_policy(kind), workload, dendrogram)
    expected = _feed(serial, stream)

    vector = _build(_policy(kind, kernel="vector"), workload, dendrogram)
    assert _feed(vector, stream) == expected

    sharded_policy = _policy(kind, 2, "threads", kernel="vector")
    sharded = _build(sharded_policy, workload, dendrogram)
    try:
        assert _feed(sharded, stream) == expected
        for user in workload.preferences:
            assert sharded.frontier_ids(user) == serial.frontier_ids(user)
        assert sharded.stats.comparisons == vector.stats.comparisons
        assert sharded.stats.delivered == serial.stats.delivered
    finally:
        sharded.close()


def _baseline_references(workload, plan):
    subsets = [
        {user: workload.preferences[user] for user in plan.scopes_of(shard)}
        for shard in range(plan.workers)
    ]
    policy = ServicePolicy(shared=False)
    return [policy.build(subset, workload.schema) for subset in subsets]


def _cluster_references(workload, plan, clusters):
    by_members = {frozenset(cluster.users): cluster for cluster in clusters}
    policy = ServicePolicy(shared=True, h=PAPER_H)
    return [
        policy.build_from_clusters(
            [by_members[scope] for scope in plan.scopes_of(shard)],
            workload.schema,
        )
        for shard in range(plan.workers)
    ]


@pytest.mark.parametrize("kind", ("baseline", "ftv"))
def test_per_shard_counts_match_scope_subset_serial(movies, kind):
    """Each shard's counters equal a serial monitor over exactly that
    shard's scopes — the per-scope half of the contract."""
    workload, dendrogram = movies
    stream = _stream(workload)

    sharded = _build(_policy(kind, 2, "threads"), workload, dendrogram)
    try:
        _feed(sharded, stream)
        plan = sharded.plan
        if kind == "baseline":
            references = _baseline_references(workload, plan)
        else:
            references = _cluster_references(workload, plan, sharded.clusters)
        for reference in references:
            _feed(reference, stream)
        expected = [reference.stats.snapshot() for reference in references]
        assert sharded.shard_stats() == expected
    finally:
        sharded.close()
