"""The sharded-plane regression gates: dispatch, wire format, rebalance.

Comparison counts and notification sets are deterministic, so these
assertions are CI-stable (no wall-clock noise).  The serial-equivalence
contract (DESIGN.md §12) and the wire plane riding it (§14) are gated
on a fixed hot-object replay of the movie workload:

* **whole-monitor equivalence** — a sharded monitor (threads executor,
  2 and 4 shards) must deliver byte-identical per-row notification
  sets, per-user frontiers and *total* comparison counts to the serial
  reference (equal sieve orders are co-located by the plan, so no
  shared sieve pass is ever split);
* **per-shard equivalence** — each shard's counters must equal an
  unsharded monitor built over exactly that shard's scopes and fed the
  same batches: a shard is a serial monitor over its scope subset, not
  an approximation of one.  Wire-plane keys are stripped first: a
  frame-fed shard legitimately charges zero encode passes where a
  self-feeding reference charges one per batch;
* **wire format** — the processes executor ships compact code-row
  frames, encodes exactly once per batch regardless of shard count,
  and puts at most 0.2x the bytes of the PR 5 pickled-object-list
  protocol on the pipes;
* **rebalance** — forced splits and merges mid-replay move signature
  groups between shards with zero effect on notifications, frontiers
  or comparison totals, and the plan stays a co-located partition.

For wall-clock numbers (which need real cores to move), run
``python -m repro.bench perf-shard`` (``BENCH_pr5.json``); for
bytes-per-row and encode-pass numbers, ``python -m repro.bench
perf-wire`` (``BENCH_pr8.json``).
"""

from __future__ import annotations

import pickle

import pytest

from repro.bench.runner import PAPER_H, clusters_at
from repro.data.stream import replay
from repro.metrics.counters import WIRE_KEYS
from repro.service import ServicePolicy

GATE_DISTINCT = 48
GATE_OBJECTS = 480
GATE_BATCH = 96

#: The wire frame must cost at most this fraction of the pickled
#: object-list protocol it replaced, per batch sent.
WIRE_RATIO_CEILING = 0.2


def _stream(workload):
    hot = workload.dataset.objects[:GATE_DISTINCT]
    return list(replay(hot, GATE_OBJECTS))


def _policy(kind, workers=1, executor="serial", kernel="compiled"):
    return ServicePolicy(
        shared=kind != "baseline",
        approximate=kind == "ftva",
        h=PAPER_H,
        workers=workers,
        executor=executor,
        kernel=kernel,
    )


def _build(policy, workload, dendrogram):
    if not policy.shared:
        return policy.build(workload.preferences, workload.schema)
    clusters = clusters_at(workload, dendrogram, PAPER_H, policy.approximate)
    return policy.build_from_clusters(clusters, workload.schema)


def _feed(monitor, stream):
    results = []
    for cut in range(0, len(stream), GATE_BATCH):
        results.extend(monitor.push_batch(stream[cut : cut + GATE_BATCH]))
    return results


@pytest.mark.parametrize("workers", (2, 4))
@pytest.mark.parametrize("kind", ("baseline", "ftv"))
def test_sharded_dispatch_matches_serial(movies, kind, workers):
    """Threads executor at 2 and 4 shards: byte-identical notifications
    and identical comparison totals on a fixed replay."""
    workload, dendrogram = movies
    stream = _stream(workload)

    serial = _build(_policy(kind), workload, dendrogram)
    expected = _feed(serial, stream)

    sharded_policy = _policy(kind, workers, "threads")
    sharded = _build(sharded_policy, workload, dendrogram)
    try:
        assert _feed(sharded, stream) == expected
        for user in workload.preferences:
            assert sharded.frontier_ids(user) == serial.frontier_ids(user)
        assert sharded.stats.comparisons == serial.stats.comparisons
        assert sharded.stats.delivered == serial.stats.delivered
    finally:
        sharded.close()


@pytest.mark.parametrize("kind", ("baseline", "ftv"))
def test_sharded_vector_kernel_matches_serial_compiled(movies, kind):
    """The vector kernel under the sharded plane: a threads executor at
    2 shards with ``kernel="vector"`` must deliver notifications and
    frontiers byte-identical to the *serial compiled* reference.  The
    comparison totals are compared within the vector kernel only (its
    rows*members vector-equivalent count is deterministic, so sharded
    must still equal serial vector — but not compiled)."""
    workload, dendrogram = movies
    stream = _stream(workload)

    serial = _build(_policy(kind), workload, dendrogram)
    expected = _feed(serial, stream)

    vector = _build(_policy(kind, kernel="vector"), workload, dendrogram)
    assert _feed(vector, stream) == expected

    sharded_policy = _policy(kind, 2, "threads", kernel="vector")
    sharded = _build(sharded_policy, workload, dendrogram)
    try:
        assert _feed(sharded, stream) == expected
        for user in workload.preferences:
            assert sharded.frontier_ids(user) == serial.frontier_ids(user)
        assert sharded.stats.comparisons == vector.stats.comparisons
        assert sharded.stats.delivered == serial.stats.delivered
    finally:
        sharded.close()


def _baseline_references(workload, plan):
    subsets = [
        {user: workload.preferences[user] for user in plan.scopes_of(shard)}
        for shard in range(plan.workers)
    ]
    policy = ServicePolicy(shared=False)
    return [policy.build(subset, workload.schema) for subset in subsets]


def _cluster_references(workload, plan, clusters):
    by_members = {frozenset(cluster.users): cluster for cluster in clusters}
    policy = ServicePolicy(shared=True, h=PAPER_H)
    return [
        policy.build_from_clusters(
            [by_members[scope] for scope in plan.scopes_of(shard)],
            workload.schema,
        )
        for shard in range(plan.workers)
    ]


def _strip_wire(snapshot):
    """Drop wire-plane keys before comparing against a self-feeding
    reference: a frame-fed shard charges zero encode passes by design
    (DESIGN.md §14), while the reference pays one per batch."""
    return {
        key: value for key, value in snapshot.items() if key not in WIRE_KEYS
    }


@pytest.mark.parametrize("kind", ("baseline", "ftv"))
def test_per_shard_counts_match_scope_subset_serial(movies, kind):
    """Each shard's counters equal a serial monitor over exactly that
    shard's scopes — the per-scope half of the contract."""
    workload, dendrogram = movies
    stream = _stream(workload)

    sharded = _build(_policy(kind, 2, "threads"), workload, dendrogram)
    try:
        _feed(sharded, stream)
        plan = sharded.plan
        if kind == "baseline":
            references = _baseline_references(workload, plan)
        else:
            references = _cluster_references(workload, plan, sharded.clusters)
        for reference in references:
            _feed(reference, stream)
        expected = [
            _strip_wire(reference.stats.snapshot())
            for reference in references
        ]
        got = [_strip_wire(snapshot) for snapshot in sharded.shard_stats()]
        assert got == expected
    finally:
        sharded.close()


@pytest.mark.parametrize(
    "kind,workers", [("baseline", 2), ("ftv", 2), ("ftv", 4)]
)
def test_wire_frames_replace_pickled_batches(movies, kind, workers):
    """The processes executor ships compact code-row frames: encode
    runs exactly once per batch for any shard count (zero shard-side
    passes), results match serial, and the bytes per batch on the pipes
    are at most :data:`WIRE_RATIO_CEILING` of the pickled object-list
    protocol the frames replaced."""
    workload, dendrogram = movies
    stream = _stream(workload)

    serial = _build(_policy(kind), workload, dendrogram)
    expected = _feed(serial, stream)

    sharded = _build(_policy(kind, workers, "processes"), workload, dendrogram)
    try:
        assert _feed(sharded, stream) == expected
        wire_stats = sharded.wire_stats()
        batches = -(-len(stream) // GATE_BATCH)
        assert wire_stats["encode_passes"] == batches
        assert all(
            snapshot["encode_passes"] == 0
            for snapshot in sharded.shard_stats()
        )
        # The PR 5 protocol: one pickled ("push_batch", objects) per
        # shard per batch.  The frames (including codec deltas) must
        # undercut it by at least 5x, measured on the same stream.
        coerced = [serial.ingest.coerce(row) for row in stream]
        pickled = workers * sum(
            len(
                pickle.dumps(
                    ("push_batch", coerced[cut : cut + GATE_BATCH]),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            )
            for cut in range(0, len(stream), GATE_BATCH)
        )
        assert wire_stats["wire_bytes"] <= WIRE_RATIO_CEILING * pickled
        assert sharded.stats.comparisons == serial.stats.comparisons
    finally:
        sharded.close()


def _assert_plan_invariants(monitor, workload):
    """No orphaned scopes, none doubly owned, every shard in range, and
    equal sieve signatures co-located on a single shard."""
    plan = monitor.plan
    assert set(plan.assignment.values()) <= set(range(plan.workers))
    placements: dict[str, set[int]] = {}
    if monitor.policy.shared:
        owned = [user for scope in plan.assignment for user in scope]
        assert sorted(owned) == sorted(workload.preferences)
        for record in monitor._records:
            placements.setdefault(record.signature, set()).add(record.shard)
    else:
        assert set(plan.assignment) == set(workload.preferences)
        for user, signature in monitor._signatures.items():
            placements.setdefault(signature, set()).add(
                plan.assignment[user]
            )
    assert all(len(shards) == 1 for shards in placements.values())


@pytest.mark.parametrize("kind", ("baseline", "ftv"))
def test_rebalance_mid_replay_preserves_results(movies, kind):
    """Forced split and merge mid-replay: signature groups move between
    shards via verbatim state transfer, so notifications, frontiers and
    comparison totals stay byte-identical to serial and the plan stays
    a co-located partition after every move."""
    workload, dendrogram = movies
    stream = _stream(workload)

    serial = _build(_policy(kind), workload, dendrogram)
    expected = _feed(serial, stream)

    sharded = _build(_policy(kind, 4, "threads"), workload, dendrogram)
    try:
        results = []
        cuts = list(range(0, len(stream), GATE_BATCH))
        for index, cut in enumerate(cuts):
            results.extend(sharded.push_batch(stream[cut : cut + GATE_BATCH]))
            if index == 1:
                loads = sharded.plan.loads
                busiest = max(range(4), key=lambda s: (loads[s], -s))
                assert sharded.split_shard(busiest) >= 0
                _assert_plan_invariants(sharded, workload)
            elif index == 2:
                loads = sharded.plan.loads
                source = min(range(4), key=lambda s: (loads[s], s))
                dest = max(range(4), key=lambda s: (loads[s], s))
                assert sharded.merge_shards(source, dest) >= 0
                _assert_plan_invariants(sharded, workload)
        assert results == expected
        for user in workload.preferences:
            assert sharded.frontier_ids(user) == serial.frontier_ids(user)
        assert sharded.stats.comparisons == serial.stats.comparisons
        assert sharded.stats.delivered == serial.stats.delivered
        _assert_plan_invariants(sharded, workload)
    finally:
        sharded.close()
