"""Figure 7 — effect of the number of attributes d on the publication
dataset."""

from __future__ import annotations

import pytest

from repro.bench.experiments import _prepared_projected
from repro.bench.runner import PAPER_DIMENSIONS, PAPER_H, make_monitor

KINDS = ("baseline", "ftv", "ftva")


@pytest.mark.parametrize("d", PAPER_DIMENSIONS)
@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.benchmark(group="fig7 publications vs d")
def test_fig7_monitor(timed_monitor, kind, d):
    workload, dendrogram = _prepared_projected("publications", d)
    timed_monitor(
        lambda: make_monitor(kind, workload, dendrogram, h=PAPER_H),
        workload.dataset,
        dataset="publications", d=d)
