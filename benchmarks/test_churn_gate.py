"""The PR 4 regression gate: subscription churn must stay cheap.

Comparison counts are deterministic, so these assertions are CI-stable
(no wall-clock noise).  Two contracts are gated:

* **subscribe-then-feed parity** — driving users in through
  ``MonitorService.subscribe`` before feeding must cost within 1.1x the
  comparisons of the frozen-user-base construction fed the same stream
  (empty-history subscriptions do no replay work, so the paths should
  be near-identical; the margin only absorbs cluster-assignment
  differences between incremental placement and the dendrogram cut);
* **mid-stream churn equivalence** — subscribing mid-stream must leave
  the subscriber's frontier identical to a from-scratch rebuild over
  the same cluster assignment, at bounded incremental cost.

For the full sweep (service-incremental vs rebuild-and-replay at every
lifecycle op, recorded in ``BENCH_pr4.json``), run
``python -m repro.bench perf-churn``.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import PAPER_H
from repro.service import MonitorService, ServicePolicy

GATE_OBJECTS = 400
GATE_RATIO = 1.1


def _policy(kind: str) -> ServicePolicy:
    return ServicePolicy(shared=kind != "baseline",
                         approximate=kind == "ftva", h=PAPER_H)


def _rebuild_equivalent(service: MonitorService):
    """The fresh-build oracle over the service's own cluster
    assignment (so approximate virtuals and stale-sound sieves match
    exactly)."""
    policy = service.policy
    if policy.shared:
        return policy.build_from_clusters(list(service.clusters),
                                          service.schema)
    return policy.build(service.preferences, service.schema)


@pytest.mark.parametrize("kind", ("baseline", "ftv"))
def test_subscribe_then_feed_within_ratio_of_fresh_build(movies, kind):
    """Subscribing the whole user base through the service API, then
    feeding, must not cost more than 1.1x the fresh-build path."""
    workload, _ = movies
    stream = workload.dataset.objects[:GATE_OBJECTS]

    service = MonitorService(workload.schema, policy=_policy(kind))
    for user, pref in workload.preferences.items():
        service.subscribe(user, pref)
    service.feed(stream)

    oracle = _rebuild_equivalent(service)
    expected = oracle.push_batch(list(stream))

    # Identical answers...
    for user in workload.preferences:
        assert service.frontier_ids(user) == oracle.frontier_ids(user)
    # ...at near-identical cost.
    assert service.stats.comparisons <= \
        GATE_RATIO * oracle.stats.comparisons
    assert expected  # the stream actually delivered something


#: A mid-stream join rebuilds exactly one cluster over the retained
#: history — work the cluster already did live, repeated once.  The
#: whole-run cost is therefore bounded by one extra full replay of that
#: cluster, i.e. strictly under 2x the fresh build, at any scale (the
#: tight 1.1x bound applies to the subscribe-then-feed path above,
#: where no replay happens).
JOIN_RATIO = 2.0


@pytest.mark.parametrize("kind", ("baseline", "ftv"))
def test_mid_stream_subscribe_matches_rebuild(movies, kind):
    """A mid-stream subscriber ends bit-identical to a from-scratch
    rebuild over the final cluster assignment, at the cost of at most
    one extra replay of the joined cluster."""
    workload, _ = movies
    stream = workload.dataset.objects[:GATE_OBJECTS]
    half = GATE_OBJECTS // 2
    users = list(workload.preferences.items())

    service = MonitorService(workload.schema, policy=_policy(kind))
    for user, pref in users[:-1]:
        service.subscribe(user, pref)
    service.feed(stream[:half])
    late_user, late_pref = users[-1]
    service.subscribe(late_user, late_pref)
    service.feed(stream[half:])

    oracle = _rebuild_equivalent(service)
    oracle.push_batch(list(stream))
    for user in workload.preferences:
        assert service.frontier_ids(user) == oracle.frontier_ids(user)
    assert service.stats.comparisons <= \
        JOIN_RATIO * oracle.stats.comparisons
